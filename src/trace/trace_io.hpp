// CSV import/export of traces.
//
// Format: header "time,server" followed by one row per request — plain
// unquoted fields, exactly two per row (blank lines are skipped; the
// header is honored only before the first data row). Times are written
// with round-trip precision. Import tolerates unsorted input and
// duplicate timestamps via Trace::from_unsorted. The parser is strict:
// quoted fields or extra columns are rejected, so files produced by
// trace_to_csv/save_trace always round-trip but hand-edited CSVs must
// match the format exactly.
#pragma once

#include <string>

#include "trace/trace.hpp"

namespace repl {

/// Serializes a trace to CSV text (with header).
std::string trace_to_csv(const Trace& trace);

/// Parses CSV text into a trace. `num_servers` of 0 means "infer as
/// max(server)+1". Throws std::invalid_argument on malformed rows.
Trace trace_from_csv(const std::string& text, int num_servers = 0);

/// File convenience wrappers. Both stream row by row through the file
/// streams, so a large trace never doubles peak memory as one giant CSV
/// string. Throw std::runtime_error on I/O failure.
void save_trace(const Trace& trace, const std::string& path);
Trace load_trace(const std::string& path, int num_servers = 0);

}  // namespace repl
