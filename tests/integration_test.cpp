// End-to-end integration tests on realistic (scaled-down) workloads:
// all policies run under all predictor families, theorem-backed bounds
// hold, and the experiment pipeline (trace -> predictions -> policy ->
// DP normalization) works as the benches use it.
#include <gtest/gtest.h>

#include "analysis/allocation.hpp"
#include "analysis/misprediction.hpp"
#include "analysis/ratio.hpp"
#include "baselines/naive.hpp"
#include "baselines/wang2021.hpp"
#include "core/adaptive_drwp.hpp"
#include "core/drwp.hpp"
#include "core/simulator.hpp"
#include "extensions/randomized_drwp.hpp"
#include "offline/opt_dp.hpp"
#include "offline/opt_lower_bound.hpp"
#include "predictor/history.hpp"
#include "predictor/noisy.hpp"
#include "predictor/oracle.hpp"
#include "test_util.hpp"
#include "trace/ibm_synth.hpp"
#include "trace/trace_stats.hpp"

namespace repl {
namespace {

using testing::make_config;

/// A small IBM-like workload (same generator as the benches, shorter
/// horizon) so integration tests stay fast.
Trace small_ibm_trace(std::uint64_t seed) {
  IbmSynthConfig config;
  config.horizon = 86400.0;          // one day
  config.target_requests = 1700.0;   // scaled from 11688/week
  return synthesize_ibm_like(config, seed);
}

TEST(Integration, AllPoliciesRunAllPredictorsOnIbmLikeTrace) {
  const Trace trace = small_ibm_trace(5);
  ASSERT_GT(trace.size(), 500u);
  const SystemConfig config = make_config(10, 500.0);
  const double opt = optimal_offline_cost(config, trace);
  ASSERT_GT(opt, 0.0);

  std::vector<PolicyPtr> policies;
  policies.push_back(std::make_unique<DrwpPolicy>(0.3));
  policies.push_back(std::make_unique<ConventionalPolicy>());
  policies.push_back(std::make_unique<AdaptiveDrwpPolicy>(
      0.3, AdaptiveDrwpPolicy::Options{0.5, 100}));
  policies.push_back(std::make_unique<Wang2021Policy>());
  policies.push_back(std::make_unique<FullReplicationPolicy>());
  policies.push_back(std::make_unique<StaticPolicy>());
  policies.push_back(std::make_unique<SingleCopyChasePolicy>());
  policies.push_back(std::make_unique<RandomizedDrwpPolicy>(0.3, 9));

  OraclePredictor oracle(trace);
  AccuracyPredictor noisy(trace, 0.7, 77);
  HistoryPredictor history(10);
  for (auto& policy : policies) {
    for (Predictor* predictor : std::initializer_list<Predictor*>{
             &oracle, &noisy, &history}) {
      const RatioReport report =
          evaluate_policy(config, *policy, trace, *predictor, opt);
      EXPECT_GE(report.ratio, 1.0 - 1e-9)
          << policy->name() << " / " << predictor->name();
      EXPECT_LT(report.ratio, 100.0)
          << policy->name() << " / " << predictor->name();
    }
  }
}

TEST(Integration, TheoremBoundsOnIbmLikeTrace) {
  const Trace trace = small_ibm_trace(6);
  for (double lambda : {10.0, 500.0, 5000.0}) {
    const SystemConfig config = make_config(10, lambda);
    const double opt = optimal_offline_cost(config, trace);
    for (double alpha : {0.1, 0.5, 1.0}) {
      OraclePredictor oracle(trace);
      DrwpPolicy consistent(alpha);
      EXPECT_LE(
          evaluate_policy(config, consistent, trace, oracle, opt).ratio,
          consistency_bound(alpha) + 1e-9)
          << "alpha=" << alpha << " lambda=" << lambda;
      AdversarialPredictor wrong(trace);
      DrwpPolicy robust(alpha);
      EXPECT_LE(evaluate_policy(config, robust, trace, wrong, opt).ratio,
                robustness_bound(alpha) + 1e-9)
          << "alpha=" << alpha << " lambda=" << lambda;
    }
  }
}

TEST(Integration, AccuracyImprovesDrwpOnIbmLikeTrace) {
  // The paper's headline empirical claim: with small alpha, higher
  // prediction accuracy lowers the cost ratio. Checked at the endpoints
  // (0% vs 100%) where the trend is theorem-like rather than noisy.
  const Trace trace = small_ibm_trace(7);
  const SystemConfig config = make_config(10, 500.0);
  const double opt = optimal_offline_cost(config, trace);
  const double alpha = 0.1;
  AccuracyPredictor bad(trace, 0.0, 3);
  AccuracyPredictor good(trace, 1.0, 3);
  DrwpPolicy a(alpha), b(alpha);
  const double ratio_bad =
      evaluate_policy(config, a, trace, bad, opt).ratio;
  const double ratio_good =
      evaluate_policy(config, b, trace, good, opt).ratio;
  EXPECT_LT(ratio_good, ratio_bad);
}

TEST(Integration, AlphaOneInsensitiveToAccuracy) {
  // The paper's observed plateau: at alpha = 1 the ratio is independent
  // of prediction accuracy.
  const Trace trace = small_ibm_trace(8);
  const SystemConfig config = make_config(10, 1000.0);
  const double opt = optimal_offline_cost(config, trace);
  double first = -1.0;
  for (double accuracy : {0.0, 0.3, 0.6, 1.0}) {
    AccuracyPredictor predictor(trace, accuracy, 11);
    DrwpPolicy policy(1.0);
    const double ratio =
        evaluate_policy(config, policy, trace, predictor, opt).ratio;
    if (first < 0.0) {
      first = ratio;
    } else {
      EXPECT_DOUBLE_EQ(ratio, first) << "accuracy=" << accuracy;
    }
  }
}

TEST(Integration, SmallLambdaRatiosNearOne) {
  // Figure-25 regime: when λ is far below typical inter-request times,
  // Algorithm 1 tracks the optimum closely for any accuracy.
  const Trace trace = small_ibm_trace(9);
  const TraceStats stats = compute_trace_stats(trace);
  const double lambda = 10.0;
  ASSERT_GT(stats.median_per_server_gap, 5 * lambda);
  const SystemConfig config = make_config(10, lambda);
  const double opt = optimal_offline_cost(config, trace);
  for (double accuracy : {0.0, 0.5, 1.0}) {
    AccuracyPredictor predictor(trace, accuracy, 13);
    DrwpPolicy policy(0.2);
    const double ratio =
        evaluate_policy(config, policy, trace, predictor, opt).ratio;
    EXPECT_LT(ratio, 1.35) << "accuracy=" << accuracy;
  }
}

TEST(Integration, AllocationIdentityOnIbmLikeTrace) {
  const Trace trace = small_ibm_trace(10);
  const SystemConfig config = make_config(10, 500.0);
  AccuracyPredictor predictor(trace, 0.6, 17);
  const SimulationResult result =
      testing::run_drwp(config, trace, 0.4, predictor);
  const AllocationReport report = allocate_costs(result, trace);
  EXPECT_NEAR(report.discrepancy() / report.total_allocated, 0.0, 1e-9);
  const MispredictionReport mispredictions =
      analyze_mispredictions(result, trace, 0.4);
  EXPECT_GT(mispredictions.mispredicted(), 0u);
  EXPECT_GT(mispredictions.correct, 0u);
}

TEST(Integration, OptSandwichOnIbmLikeTrace) {
  const Trace trace = small_ibm_trace(11);
  for (double lambda : {50.0, 500.0}) {
    const SystemConfig config = make_config(10, lambda);
    const double opt = optimal_offline_cost(config, trace);
    EXPECT_GE(opt, opt_lower_bound(config, trace) - 1e-6);
    OraclePredictor oracle(trace);
    DrwpPolicy policy(0.5);
    SimulationOptions lean;
    lean.record_events = false;
    const double online = Simulator(config, lean)
                              .run(policy, trace, oracle)
                              .total_cost();
    EXPECT_LE(opt, online + 1e-6);
  }
}

}  // namespace
}  // namespace repl
