// Ground-truth predictors (clairvoyant): the perfect oracle and its
// negation (the worst possible predictor). Both read the driving trace.
#pragma once

#include "predictor/predictor.hpp"
#include "trace/trace.hpp"

namespace repl {

/// Computes the ground truth for a prediction query against `trace`:
/// whether the next request at the query's server arrives within lambda.
/// Handles the dummy-request query (request_index == -1) via the first
/// request at the initial server.
bool ground_truth_within_lambda(const Trace& trace,
                                const PredictionQuery& query);

/// Always-correct predictor. Under it, Algorithm 1's competitive ratio is
/// the paper's consistency bound (5+alpha)/3.
class OraclePredictor final : public Predictor {
 public:
  explicit OraclePredictor(const Trace& trace) : trace_(&trace) {}

  Prediction predict(const PredictionQuery& query) override;
  std::string name() const override { return "oracle"; }

 private:
  const Trace* trace_;
};

/// Always-wrong predictor: the adversarial input for robustness tests;
/// under it the ratio is governed by the paper's 1 + 1/alpha bound.
class AdversarialPredictor final : public Predictor {
 public:
  explicit AdversarialPredictor(const Trace& trace) : trace_(&trace) {}

  Prediction predict(const PredictionQuery& query) override;
  std::string name() const override { return "adversarial"; }

 private:
  const Trace* trace_;
};

}  // namespace repl
