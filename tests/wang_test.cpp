// Wang et al. (2021) baseline tests, including the paper's Section-11
// counterexample: the algorithm's ratio approaches 5/2 on the Figure-9
// instance, refuting the claimed 2-competitiveness.
#include <gtest/gtest.h>

#include "analysis/ratio.hpp"
#include "baselines/wang2021.hpp"
#include "core/simulator.hpp"
#include "offline/opt_dp.hpp"
#include "predictor/fixed.hpp"
#include "test_util.hpp"
#include "trace/paper_instances.hpp"

namespace repl {
namespace {

using testing::make_config;

TEST(Wang2021, RequiresObjectToStartAtHome) {
  SystemConfig config = make_config(3, 10.0);
  config.storage_rates = {2.0, 1.0, 3.0};  // home is server 1
  config.initial_server = 0;
  Wang2021Policy policy;
  NullEventSink sink;
  EXPECT_THROW(policy.reset(config, Prediction{}, sink),
               std::invalid_argument);
  config.initial_server = 1;
  EXPECT_NO_THROW(policy.reset(config, Prediction{}, sink));
  EXPECT_EQ(policy.home_server(), 1);
}

TEST(Wang2021, KeepsCopyForTtlAfterLocalRequest) {
  const SystemConfig config = make_config(2, 10.0);
  Wang2021Policy policy;
  NullEventSink sink;
  policy.reset(config, Prediction{}, sink);
  policy.advance_to(3.0, sink);
  const ServeAction action =
      policy.on_request(1, 3.0, Prediction{}, sink);
  EXPECT_FALSE(action.local);
  EXPECT_DOUBLE_EQ(action.intended_duration, 10.0);  // λ/µ with µ=1
  EXPECT_TRUE(policy.holds(1));
  EXPECT_TRUE(policy.holds(0));  // regular source keeps its copy
}

TEST(Wang2021, OnlyCopyGetsOneGraceRenewalThenMigratesHome) {
  // λ=10. The dummy copy at home renews forever; a remote copy that
  // becomes the only copy is renewed once and then sent home.
  const SystemConfig config = make_config(2, 10.0);
  Wang2021Policy policy;
  NullEventSink sink;
  policy.reset(config, Prediction{}, sink);
  policy.advance_to(1.0, sink);
  policy.on_request(1, 1.0, Prediction{}, sink);  // copy at s1 until 11
  // Home's copy (expiry 10) is dropped at 10 (two copies); s1's copy
  // expires at 11 as the only copy -> renewed to 21 -> at 21 it migrates
  // home.
  policy.advance_to(15.0, sink);
  EXPECT_FALSE(policy.holds(0));
  EXPECT_TRUE(policy.holds(1));
  policy.advance_to(22.0, sink);
  EXPECT_TRUE(policy.holds(0));   // migrated home at t=21
  EXPECT_FALSE(policy.holds(1));
  EXPECT_EQ(policy.copy_count(), 1);
}

TEST(Wang2021, HomeRenewsIndefinitely) {
  const SystemConfig config = make_config(2, 10.0);
  Wang2021Policy policy;
  NullEventSink sink;
  policy.reset(config, Prediction{}, sink);
  policy.advance_to(1000.0, sink);  // many renewals, never dropped
  EXPECT_TRUE(policy.holds(0));
  EXPECT_EQ(policy.copy_count(), 1);
}

TEST(Wang2021, Figure9WalkthroughCost) {
  // λ=10, ε=0.01, m=10 requests in the paper's numbering. The paper
  // derives ≈5λ of online cost per request at s2 versus ≈2λ+ε optimal.
  const double lambda = 10.0, eps = 0.01;
  const int m = 10;
  const SystemConfig config = make_config(2, lambda);
  const Trace trace = make_figure9_trace(lambda, eps, m);
  Wang2021Policy policy;
  FixedPredictor ignored = always_beyond_predictor();
  const SimulationResult result =
      Simulator(config).run(policy, trace, ignored);
  // Per cycle: one serve transfer + one migrate-home transfer.
  EXPECT_GE(result.num_transfers, static_cast<std::size_t>(2 * (m - 2)));
  EXPECT_GE(result.total_cost(), (m - 2) * 5.0 * lambda - 2.0 * lambda);
}

TEST(Wang2021, CounterexampleRatioApproachesFiveHalves) {
  const double lambda = 100.0, eps = 1e-3;
  const int m = 300;
  const SystemConfig config = make_config(2, lambda);
  const Trace trace = make_figure9_trace(lambda, eps, m);
  Wang2021Policy policy;
  FixedPredictor ignored = always_beyond_predictor();
  const RatioReport report =
      evaluate_policy(config, policy, trace, ignored);
  EXPECT_GT(report.ratio, 2.45);
  EXPECT_LT(report.ratio, 2.55);
}

TEST(Wang2021, BetterThanNothingOnRandomTraces) {
  // Sanity: on random traces the policy is feasible and within its
  // worst-case factor of the optimum (2.5 on uniform rates, empirically).
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const Trace trace = testing::random_trace(4, 0.05, 3000.0, seed + 130);
    if (trace.empty()) continue;
    const SystemConfig config = make_config(4, 15.0);
    Wang2021Policy policy;
    FixedPredictor ignored = always_beyond_predictor();
    const RatioReport report =
        evaluate_policy(config, policy, trace, ignored);
    EXPECT_GE(report.ratio, 1.0 - 1e-9);
    EXPECT_LE(report.ratio, 3.5) << "seed=" << seed;
  }
}

TEST(Wang2021, WeightedTtlScalesWithRate) {
  SystemConfig config = make_config(2, 10.0);
  config.storage_rates = {1.0, 4.0};
  Wang2021Policy policy;
  NullEventSink sink;
  policy.reset(config, Prediction{}, sink);
  policy.advance_to(1.0, sink);
  const ServeAction action =
      policy.on_request(1, 1.0, Prediction{}, sink);
  EXPECT_DOUBLE_EQ(action.intended_duration, 2.5);  // λ/µ = 10/4
}

TEST(Wang2021, CloneIsIndependent) {
  const SystemConfig config = make_config(2, 10.0);
  Wang2021Policy policy;
  NullEventSink sink;
  policy.reset(config, Prediction{}, sink);
  auto clone = policy.clone();
  clone->advance_to(5.0, sink);
  clone->on_request(1, 5.0, Prediction{}, sink);
  EXPECT_TRUE(clone->holds(1));
  EXPECT_FALSE(policy.holds(1));
}

}  // namespace
}  // namespace repl
