// Double-buffered event-log ingestion.
//
// Decoding an event log costs CPU — especially the compressed format,
// whose blocks are delta- and varint-coded — and StreamingEngine::serve
// historically alternated read → ingest on one thread, leaving the
// decode on the serving critical path. BatchPrefetcher moves the reads
// to a dedicated thread: while the shards execute batch N, the reader
// thread decodes batch N+1 (up to `depth` batches ahead, default 2 —
// classic double buffering).
//
// Correctness: the prefetcher delivers exactly the batches a synchronous
// read_batch loop would, in the same order — it only changes *when* the
// decode happens — so the engine's bit-identical determinism contract is
// untouched. A reader exception (truncation, CRC mismatch, wrong-log
// hash failure) is captured and rethrown from next() at the position
// where the synchronous loop would have hit it, after all the batches
// read before the failure — including the partial batch the reader had
// decoded when it threw — were delivered. The error is sticky: every
// next() after the first rethrow throws again rather than reporting a
// clean EOF.
//
// Batch buffers are recycled through a free list, so steady state does
// no allocation.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "trace/event_log.hpp"

namespace repl {

class BatchPrefetcher {
 public:
  /// Starts the reader thread. `reader` must outlive the prefetcher and
  /// must not be touched by the caller until the prefetcher is
  /// destroyed (its position is owned by the reader thread).
  BatchPrefetcher(EventLogReader& reader, std::size_t batch_events,
                  std::size_t depth = 2);
  /// Stops the reader thread and joins it. Batches not yet consumed are
  /// dropped (used only on error/early-exit paths).
  ~BatchPrefetcher();

  BatchPrefetcher(const BatchPrefetcher&) = delete;
  BatchPrefetcher& operator=(const BatchPrefetcher&) = delete;

  /// Blocks for the next batch, moving it into `out` (replaced; `out`'s
  /// old buffer is recycled). Returns false at the end of the stream.
  /// Rethrows the reader thread's exception once every event decoded
  /// before the failure (including a partial final batch) has been
  /// delivered; the error then sticks across repeated calls.
  bool next(std::vector<LogEvent>& out);

  /// Reader byte position (EventLogReader::bytes_read) as of the last
  /// batch *delivered* by next() — not the decode thread's live
  /// position, so the value only moves at batch handoffs and never races
  /// the reader thread.
  std::uint64_t bytes_delivered() const;

 private:
  void run();

  EventLogReader& reader_;
  const std::size_t batch_events_;
  const std::size_t depth_;

  mutable std::mutex mutex_;
  std::condition_variable ready_cv_;  // consumer waits: batch or EOF/error
  std::condition_variable space_cv_;  // producer waits: queue below depth
  std::deque<std::vector<LogEvent>> ready_;
  /// Reader byte position captured when the matching ready_ batch was
  /// enqueued (parallel deque).
  std::deque<std::uint64_t> ready_bytes_;
  std::uint64_t bytes_delivered_ = 0;
  std::vector<std::vector<LogEvent>> free_;
  std::exception_ptr error_;
  bool done_ = false;   // producer finished (EOF or error)
  bool stop_ = false;   // destructor asked the producer to quit
  std::thread thread_;
};

}  // namespace repl
