// Section-9 lower-bound adversary tests: every deterministic policy in
// the library is forced to a ratio approaching (or exceeding) 3/2 against
// the offline optimum, under genuinely correct predictions.
#include <gtest/gtest.h>

#include "adversary/lower_bound_adversary.hpp"
#include "analysis/ratio.hpp"
#include "baselines/naive.hpp"
#include "baselines/wang2021.hpp"
#include "core/adaptive_drwp.hpp"
#include "core/drwp.hpp"
#include "core/simulator.hpp"
#include "offline/opt_dp.hpp"
#include "predictor/fixed.hpp"

namespace repl {
namespace {

LowerBoundAdversary::Options options_for(double lambda, int m) {
  LowerBoundAdversary::Options options;
  options.lambda = lambda;
  options.epsilon = lambda * 1e-4;
  options.num_requests = m;
  return options;
}

TEST(Adversary, GeneratedGapsExceedLambdaSoPredictionsAreCorrect) {
  const LowerBoundAdversary adversary(options_for(10.0, 150));
  DrwpPolicy policy(0.4);
  const AdversaryResult result = adversary.generate(policy);
  ASSERT_EQ(result.trace.size(), 150u);
  for (std::size_t i = 0; i < result.trace.size(); ++i) {
    const double gap = interarrival_to_prev(result.trace, i, 0);
    EXPECT_GT(gap, 10.0) << "request " << i;
  }
}

TEST(Adversary, DeterministicForDeterministicPolicy) {
  const LowerBoundAdversary adversary(options_for(10.0, 80));
  DrwpPolicy policy(0.6);
  const AdversaryResult a = adversary.generate(policy);
  const AdversaryResult b = adversary.generate(policy);
  ASSERT_EQ(a.trace.size(), b.trace.size());
  for (std::size_t i = 0; i < a.trace.size(); ++i) {
    EXPECT_EQ(a.trace[i], b.trace[i]);
  }
}

TEST(Adversary, ReplayReproducesAdversarialBehaviour) {
  // Re-running the victim on the generated trace must serve every
  // Type-K1 request by a transfer (the adversary fires right after the
  // victim's copy disappears).
  const LowerBoundAdversary adversary(options_for(10.0, 120));
  DrwpPolicy policy(0.5);
  const AdversaryResult result = adversary.generate(policy);
  FixedPredictor beyond = always_beyond_predictor();
  DrwpPolicy replay(0.5);
  const SimulationResult run = Simulator(adversary.config())
                                   .run(replay, result.trace, beyond);
  for (std::size_t i = 0; i < result.trace.size(); ++i) {
    if (result.kinds[i] != AdversaryKind::kK2) {
      EXPECT_FALSE(run.serves[i].local) << "request " << i;
    }
  }
}

class AdversaryRatio : public ::testing::TestWithParam<double> {};

TEST_P(AdversaryRatio, DrwpForcedAboveThreeHalves) {
  const double alpha = GetParam();
  const double lambda = 10.0;
  const LowerBoundAdversary adversary(options_for(lambda, 500));
  DrwpPolicy prototype(alpha);
  const AdversaryResult generated = adversary.generate(prototype);

  FixedPredictor beyond = always_beyond_predictor();
  DrwpPolicy victim(alpha);
  const RatioReport report = evaluate_policy(
      adversary.config(), victim, generated.trace, beyond);
  // The paper's bound is asymptotic (3/2 as eps -> 0, m -> inf); with
  // eps = 1e-4*lambda and m = 500 the ratio must already clear 1.45.
  EXPECT_GT(report.ratio, 1.45) << "alpha=" << alpha;
}

INSTANTIATE_TEST_SUITE_P(AlphaSweep, AdversaryRatio,
                         ::testing::Values(0.2, 0.4, 0.6, 0.8, 1.0));

TEST(Adversary, ForcesAdaptivePolicyToo) {
  const double lambda = 10.0;
  const LowerBoundAdversary adversary(options_for(lambda, 400));
  AdaptiveDrwpPolicy::Options options;
  options.beta = 0.1;
  options.warmup_requests = 20;
  AdaptiveDrwpPolicy prototype(0.3, options);
  const AdversaryResult generated = adversary.generate(prototype);
  FixedPredictor beyond = always_beyond_predictor();
  AdaptiveDrwpPolicy victim(0.3, options);
  const RatioReport report = evaluate_policy(
      adversary.config(), victim, generated.trace, beyond);
  EXPECT_GT(report.ratio, 1.4);
}

TEST(Adversary, ForcesBaselinePolicies) {
  const double lambda = 10.0;
  const LowerBoundAdversary adversary(options_for(lambda, 300));
  FixedPredictor beyond = always_beyond_predictor();

  Wang2021Policy wang;
  const AdversaryResult vs_wang = adversary.generate(wang);
  Wang2021Policy wang_victim;
  EXPECT_GT(evaluate_policy(adversary.config(), wang_victim, vs_wang.trace,
                            beyond)
                .ratio,
            1.45);

  FullReplicationPolicy full;
  const AdversaryResult vs_full = adversary.generate(full);
  FullReplicationPolicy full_victim;
  EXPECT_GT(evaluate_policy(adversary.config(), full_victim, vs_full.trace,
                            beyond)
                .ratio,
            1.45);

  StaticPolicy pinned;
  const AdversaryResult vs_static = adversary.generate(pinned);
  StaticPolicy static_victim;
  EXPECT_GT(evaluate_policy(adversary.config(), static_victim,
                            vs_static.trace, beyond)
                .ratio,
            1.45);
}

TEST(Adversary, KindsArePopulated) {
  const LowerBoundAdversary adversary(options_for(10.0, 200));
  DrwpPolicy policy(0.5);
  const AdversaryResult result = adversary.generate(policy);
  const std::size_t total =
      result.count(AdversaryKind::kK1a) + result.count(AdversaryKind::kK1b) +
      result.count(AdversaryKind::kK1c) + result.count(AdversaryKind::kK2);
  EXPECT_EQ(total, result.trace.size());
  // Against DRWP (which drops expired copies), the adversary must use
  // the K1 branch at least some of the time.
  EXPECT_GT(result.count(AdversaryKind::kK1a) +
                result.count(AdversaryKind::kK1b) +
                result.count(AdversaryKind::kK1c),
            0u);
}

TEST(Adversary, RejectsBadOptions) {
  LowerBoundAdversary::Options bad;
  bad.lambda = 10.0;
  bad.epsilon = 20.0;  // epsilon >= lambda
  EXPECT_THROW(LowerBoundAdversary{bad}, std::invalid_argument);
}

}  // namespace
}  // namespace repl
