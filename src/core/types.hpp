// Shared value types of the replication engine.
#pragma once

#include <limits>
#include <vector>

#include "predictor/predictor.hpp"
#include "util/check.hpp"

namespace repl {

/// Static description of the multi-server system.
///
/// Storage costs 1 per time unit per copy by default; the optional
/// `storage_rates` vector (one rate per server) enables the
/// distinct-storage-cost extension studied in Section 11 / Wang et al.
/// 2021. The transfer cost between any two servers is the uniform
/// `transfer_cost` (the paper's λ).
struct SystemConfig {
  int num_servers = 1;
  double transfer_cost = 1.0;  // λ > 0
  int initial_server = 0;      // holds the only copy at time 0 (s1)
  std::vector<double> storage_rates;  // empty => all servers rate 1

  double storage_rate(int server) const {
    if (storage_rates.empty()) return 1.0;
    return storage_rates[static_cast<std::size_t>(server)];
  }

  void validate() const {
    REPL_REQUIRE(num_servers >= 1);
    REPL_REQUIRE(transfer_cost > 0.0);
    REPL_REQUIRE(initial_server >= 0 && initial_server < num_servers);
    REPL_REQUIRE(storage_rates.empty() ||
                 storage_rates.size() ==
                     static_cast<std::size_t>(num_servers));
    for (double r : storage_rates) REPL_REQUIRE(r > 0.0);
  }
};

/// How a request was served, plus the bookkeeping Algorithm 1's analysis
/// needs (Section 4.1's request typing is derived from these fields).
struct ServeAction {
  bool local = false;
  /// Server whose copy served the request (equals the request's server
  /// when local, the transfer source otherwise).
  int source = -1;
  /// The serving copy was a *special* copy (kept beyond its intended
  /// duration, Algorithm 1's K tag) at serve time.
  bool source_special = false;
  /// If `source_special`, the instant the serving copy switched from
  /// regular to special (the paper's t'_i).
  double special_since = std::numeric_limits<double>::infinity();
  /// Intended duration the policy set for the requester's copy after this
  /// request (λ or α·λ for Algorithm 1); 0 for policies without TTLs.
  double intended_duration = 0.0;
  /// Transfers emitted during this request beyond the serving one (e.g.
  /// offline plans replicating to additional servers). The simulator
  /// validates the emitted-transfer count against this.
  int extra_transfers = 0;
};

/// Receives the policy's state-change notifications. The simulator is the
/// canonical sink (cost integration + invariant checking); tests may use
/// lighter ones.
class EventSink {
 public:
  virtual ~EventSink() = default;
  /// A copy materialized at `server` (initial placement or transfer
  /// receipt).
  virtual void on_create(int server, double time) = 0;
  /// The copy at `server` was dropped.
  virtual void on_drop(int server, double time) = 0;
  /// The copy at `server` outlived its intended duration and became a
  /// special copy (Algorithm 1 lines 21–22).
  virtual void on_mark_special(int server, double time) = 0;
  /// The object was transferred src -> dst (cost λ).
  virtual void on_transfer(int src, int dst, double time) = 0;
  /// The policy (re)set the intended expiry of `server`'s copy to
  /// time + duration. Informational; used by analysis.
  virtual void on_set_duration(int server, double time, double duration) = 0;
};

/// No-op sink for probing policies without recording.
class NullEventSink final : public EventSink {
 public:
  void on_create(int, double) override {}
  void on_drop(int, double) override {}
  void on_mark_special(int, double) override {}
  void on_transfer(int, int, double) override {}
  void on_set_duration(int, double, double) override {}
};

}  // namespace repl
