// Exploratory randomized variant of Algorithm 1 (not from the paper).
//
// Classical randomized ski-rental buys after renting z·B where z is drawn
// from the density e^z/(e−1) on [0,1], beating every deterministic
// strategy (ratio e/(e−1) ≈ 1.582 instead of 2). Transplanted here: when
// the prediction says the next request is *beyond* λ, the intended
// duration is λ·z with z ~ e^z/(e−1) rescaled to [0, α] (so the expected
// duration stays below the deterministic α·λ choice while hedging against
// mispredictions); a "within" prediction still yields λ. With α = 1 this
// is a prediction-free randomized policy.
//
// No competitive guarantee is claimed — the paper's lower bound (3/2)
// applies to deterministic algorithms only, and benchmarking this variant
// against it is exactly the point of the extension
// (bench_weighted_extension prints the comparison).
#pragma once

#include <cstdint>

#include "core/drwp.hpp"
#include "util/rng.hpp"

namespace repl {

class RandomizedDrwpPolicy final : public DrwpPolicy {
 public:
  RandomizedDrwpPolicy(double alpha, std::uint64_t seed);

  void reset(const SystemConfig& config, const Prediction& pred0,
             EventSink& sink) override;
  std::string name() const override;
  std::unique_ptr<ReplicationPolicy> clone() const override;

  /// Base DRWP state plus the raw RNG stream position, so a restored
  /// policy draws the same duration sequence the uninterrupted run would.
  void save_state(StateWriter& out) const override;
  void load_state(StateReader& in) override;

 protected:
  double choose_duration(const Prediction& pred,
                         const ServeContext& ctx) override;

 private:
  std::uint64_t seed_;
  Rng rng_;
};

}  // namespace repl
