// Lightweight invariant checking used throughout the library.
//
// REPL_CHECK fires in all build types: the invariants it guards (e.g. the
// at-least-one-copy requirement, or the special-copy uniqueness property of
// Algorithm 1) are cheap relative to the surrounding work and their
// violation always indicates a logic bug, never bad user input.
// REPL_REQUIRE is for validating user-supplied arguments and throws
// std::invalid_argument instead.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace repl {

/// Thrown when an internal invariant is violated (a bug in this library).
class CheckFailure : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "invariant violated: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckFailure(os.str());
}

[[noreturn]] inline void require_failed(const char* expr, const char* file,
                                        int line, const std::string& msg) {
  std::ostringstream os;
  os << "invalid argument: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::invalid_argument(os.str());
}

}  // namespace detail

#define REPL_CHECK(expr)                                                   \
  do {                                                                     \
    if (!(expr)) ::repl::detail::check_failed(#expr, __FILE__, __LINE__,   \
                                              std::string());              \
  } while (false)

#define REPL_CHECK_MSG(expr, msg)                                          \
  do {                                                                     \
    if (!(expr)) {                                                         \
      std::ostringstream repl_check_os;                                    \
      repl_check_os << msg;                                                \
      ::repl::detail::check_failed(#expr, __FILE__, __LINE__,              \
                                   repl_check_os.str());                   \
    }                                                                      \
  } while (false)

#define REPL_REQUIRE(expr)                                                 \
  do {                                                                     \
    if (!(expr)) ::repl::detail::require_failed(#expr, __FILE__, __LINE__, \
                                                std::string());            \
  } while (false)

#define REPL_REQUIRE_MSG(expr, msg)                                        \
  do {                                                                     \
    if (!(expr)) {                                                         \
      std::ostringstream repl_check_os;                                    \
      repl_check_os << msg;                                                \
      ::repl::detail::require_failed(#expr, __FILE__, __LINE__,            \
                                     repl_check_os.str());                 \
    }                                                                      \
  } while (false)

}  // namespace repl
