// Synthetic stand-in for the IBM Cloud Object Storage traces used by the
// paper's Appendix J.
//
// The original traces (object "652aaef228286e0a": 11688 read requests over
// 7 days, distributed over 10 servers by a Zipf rule) are no longer
// redistributable, so this module synthesizes a workload with the same
// coarse statistics that the paper's evaluation actually depends on:
//
//  * ~11.7k requests over a 7-day horizon (mean inter-request time ≈ 500 s,
//    the figure the paper quotes when discussing the λ sweep);
//  * heavy-tailed, bursty inter-request times spanning several orders of
//    magnitude (object storage access is bursty) — modeled as a diurnal
//    base process plus Pareto-length burst episodes;
//  * requests assigned to 10 servers with P(server i) = i^(-1)/H_10,
//    exactly Appendix J's assignment rule.
//
// See DESIGN.md §4 for the substitution rationale.
#pragma once

#include <cstdint>

#include "trace/trace.hpp"

namespace repl {

struct IbmSynthConfig {
  int num_servers = 10;
  double horizon = 7.0 * 86400.0;  // 7 days in seconds
  double target_requests = 11688.0;
  double diurnal_amplitude = 0.6;
  double burst_rate_multiplier = 12.0;  // arrival rate inside a burst
  double burst_fraction = 0.25;         // fraction of requests from bursts
  double burst_mean_length = 600.0;     // mean burst episode length (s)
  double burst_length_shape = 1.5;      // Pareto shape of episode lengths
  double zipf_s = 1.0;
};

/// Generates the IBM-like trace. Deterministic in `seed`.
Trace synthesize_ibm_like(const IbmSynthConfig& config, std::uint64_t seed);

/// Convenience: the default configuration used across benches/tests.
Trace default_ibm_like_trace(std::uint64_t seed);

}  // namespace repl
