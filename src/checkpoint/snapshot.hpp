// Versioned binary snapshot container for full engine state.
//
// A snapshot freezes a StreamingEngine mid-stream: the engine-level
// scalars plus one state record per live object, so a long-running serve
// can resume after a crash or redeploy with bit-identical final
// aggregates. The file layout mirrors trace/event_log.hpp's conventions
// (magic/version header, little-endian fixed-width fields, strict
// truncation detection):
//
//   offset  size  field
//   0       8     magic        "REPLCKPT"
//   8       4     version      currently 3
//   12      4     num_servers
//   16      8     num_objects        (object records that follow)
//   24      8     events_ingested    (the event-log resume offset in
//                                     records)
//   32      8     batches            (ingest batches so far, diagnostics)
//   40      8     base_seed          (per-object seed root; must match on
//                                     restore or object RNG streams fork)
//   48      8     last_batch_time    IEEE-754 binary64
//   56      4     flags              bit 0: any_event
//                                    bit 1: compute_lower_bound
//                                    bit 2: log binding fields meaningful
//   60      4     reserved, 0
//   --- version 2 extension (absent in version-1 files) ---
//   64      8     log_hash           rolling hash over every ingested
//                                     event (event_stream_hash), the
//                                     snapshot↔log binding checked on
//                                     resume
//   72      8     log_num_objects    driving log's header value (0 when
//                                     unknown / not bound)
//   80      8     log_num_events     driving log's header value
//                                     (kUnknownLogEvents when unknown)
//   88      4+n   policy_spec        length-prefixed canonical component
//                                     spec (empty: unknown, legacy
//                                     factory construction)
//   ...     4+n   predictor_spec     likewise
//   --- version 3 extension ---
//   ...     4     codec              per-record payload codec: 0 raw,
//                                     1 word codec (codec/word_codec.hpp)
//   ---
//   then    --    object records, ascending object id.
//                 Version <= 2:
//                   0   8   object id
//                   8   4   payload length in bytes
//                   12  --  payload (StateWriter stream)
//                 Version 3:
//                   0   8   object id
//                   8   4   encoded length in bytes
//                   12  4   raw (decoded) length in bytes
//                   16  4   CRC-32C over the 16 prefix bytes + encoded
//                           payload
//                   20  --  encoded payload
//   end     8     footer magic "REPLCKND"
//
// The trailing footer makes truncation at an exact record boundary — a
// crash mid-checkpoint — detectable, which header-count checking alone
// would miss for the final record. Writers therefore emit to a temporary
// path and rename into place (see StreamingEngine::serve) so a partial
// file never shadows a good snapshot.
//
// Version 3 records carry a per-record CRC whether or not they are
// compressed, so a flipped bit anywhere in a record fails with a
// diagnostic naming the record; the word codec shrinks the double-heavy
// payloads (repeated NaN/inf sentinels, near-constant accumulators).
// Version 1 files (no extension block) and version 2 files (no codec
// field, bare records) still read: v1 specs decode empty and the log
// binding as unknown, which downgrades the resume cross-checks to the
// version-1 behavior.
#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

namespace repl {

/// Best-effort fsync of a file or directory (no-op off POSIX). Callers
/// that rename a sealed snapshot over a previous one should sync the
/// containing directory afterwards so the rename itself is durable.
void sync_path_best_effort(const std::string& path);

struct SnapshotHeader {
  static constexpr std::uint64_t kMagic = 0x54504b434c504552ULL;  // "REPLCKPT"
  static constexpr std::uint64_t kFooterMagic =
      0x444e4b434c504552ULL;  // "REPLCKND"
  static constexpr std::uint32_t kVersion = 3;
  static constexpr std::size_t kSize = 64;  // fixed part, bytes on disk
  /// Fixed-width portion of the v2 extension (before the spec strings).
  static constexpr std::size_t kExtensionSize = 24;

  /// Object-record payload codecs (version >= 3).
  static constexpr std::uint32_t kCodecRaw = 0;
  static constexpr std::uint32_t kCodecWord = 1;

  /// Sanity cap on one object record's raw payload: a corrupt length
  /// must fail with a diagnostic, not a multi-GB allocation. Object
  /// state is typically a few hundred bytes.
  static constexpr std::uint32_t kMaxRecordBytes = 1u << 26;
  /// Cap on the encoded payload: the word codec's bounded worst case
  /// over a kMaxRecordBytes input (one control byte per two words plus
  /// slack), so everything the writer can legally emit reads back.
  static constexpr std::uint32_t kMaxEncodedRecordBytes =
      kMaxRecordBytes + kMaxRecordBytes / 16 + 16;
  /// "Unknown" sentinel for log_num_events (mirrors
  /// EventLogHeader::kUnknownCount without including trace/event_log.hpp).
  static constexpr std::uint64_t kUnknownLogEvents = ~std::uint64_t{0};

  static constexpr std::uint32_t kFlagAnyEvent = 1u << 0;
  static constexpr std::uint32_t kFlagLowerBound = 1u << 1;
  static constexpr std::uint32_t kFlagLogBound = 1u << 2;
  /// log_hash covers the engine's whole ingest history. Clear only when
  /// the snapshotting engine was itself restored from a pre-v2 snapshot
  /// (its prefix hash is unknown).
  static constexpr std::uint32_t kFlagLogHash = 1u << 3;

  std::uint32_t version = kVersion;
  std::uint32_t num_servers = 0;
  std::uint64_t num_objects = 0;
  std::uint64_t events_ingested = 0;
  std::uint64_t batches = 0;
  std::uint64_t base_seed = 0;
  double last_batch_time = 0.0;
  std::uint32_t flags = 0;
  /// Rolling hash over every event the snapshotted engine ingested.
  std::uint64_t log_hash = 0;
  /// Driving log identity at bind time; meaningful iff kFlagLogBound.
  std::uint64_t log_num_objects = 0;
  std::uint64_t log_num_events = kUnknownLogEvents;
  /// Canonical component specs of the snapshotted engine (empty when the
  /// engine was built from raw factories rather than specs).
  std::string policy_spec;
  std::string predictor_spec;
  /// Object-record payload codec (kCodecRaw for versions < 3).
  std::uint32_t codec = kCodecRaw;

  /// Total on-disk header size: where the first object record begins.
  std::size_t encoded_size() const {
    if (version < 2) return kSize;
    return kSize + kExtensionSize + 4 + policy_spec.size() + 4 +
           predictor_spec.size() + (version >= 3 ? 4 : 0);
  }

  /// Object-record prefix bytes for this version (id + lengths [+ crc]).
  std::size_t record_prefix_size() const { return version >= 3 ? 20 : 12; }
};

/// Opens `path`, validates and returns just the header — the cheap way
/// to inspect a snapshot's specs and log binding without decoding any
/// object records.
SnapshotHeader read_snapshot_header(const std::string& path);

/// Writes a snapshot file. The object count is fixed up front (the engine
/// knows its table size before serializing), so close() can verify every
/// promised record was emitted before sealing the footer.
class SnapshotWriter {
 public:
  /// Opens `path` (truncating) and emits the header. Throws
  /// std::runtime_error when the file cannot be opened.
  SnapshotWriter(const std::string& path, const SnapshotHeader& header);
  ~SnapshotWriter();

  SnapshotWriter(const SnapshotWriter&) = delete;
  SnapshotWriter& operator=(const SnapshotWriter&) = delete;

  /// Appends one object record. Ids must be strictly increasing — the
  /// canonical order, independent of shard layout.
  void add_object(std::uint64_t object_id,
                  const std::vector<unsigned char>& payload);

  /// Seals the footer, flushes, and closes. Throws std::runtime_error on
  /// I/O failure or if fewer records than promised were added. The
  /// destructor does NOT seal — an abandoned writer leaves a file without
  /// a footer, which readers reject.
  void close();

  std::uint64_t bytes_written() const { return bytes_written_; }

 private:
  std::ofstream out_;
  std::string path_;
  SnapshotHeader header_;
  std::uint64_t objects_written_ = 0;
  std::uint64_t bytes_written_ = 0;
  std::uint64_t last_id_ = 0;
  bool open_ = false;
};

/// Reads and validates a snapshot file: header on open, per-record bounds
/// and id ordering during iteration, footer at the end. Every corruption
/// mode (bad magic, unsupported version, truncation anywhere, trailing
/// garbage) raises std::runtime_error with a diagnostic.
class SnapshotReader {
 public:
  explicit SnapshotReader(const std::string& path);

  const SnapshotHeader& header() const { return header_; }

  /// Reads the next object record; returns false after the last one (at
  /// which point the footer has been verified).
  bool next_object(std::uint64_t& object_id,
                   std::vector<unsigned char>& payload);

 private:
  [[noreturn]] void fail(const std::string& what) const;
  void read_exact(void* dst, std::size_t n, const char* what);

  std::ifstream in_;
  std::string path_;
  SnapshotHeader header_;
  /// Reusable scratch for encoded (pre-codec) record payloads.
  std::vector<unsigned char> encoded_;
  std::uint64_t objects_read_ = 0;
  std::uint64_t prev_id_ = 0;
  bool footer_checked_ = false;
};

}  // namespace repl
