#include "cluster/control.hpp"

#include <bit>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "codec/endian.hpp"
#include "obs/federation.hpp"
#include "util/check.hpp"

namespace repl {

namespace {

constexpr std::size_t kHelloBytes = 32;
constexpr std::size_t kProgressBytes = 16;
constexpr std::size_t kCheckpointBytes = 8;
constexpr std::size_t kSummaryBytes = 48;
constexpr std::size_t kMetricsPrefixBytes = 16;  // trace_id + span_id

std::uint32_t pack_aux(ControlType type, std::uint32_t count) {
  return (static_cast<std::uint32_t>(type) << 24) | count;
}

void append_frame(ControlType type, std::uint32_t count,
                  const std::vector<unsigned char>& body,
                  std::vector<unsigned char>& out) {
  unsigned char frame[kBlockFrameBytes];
  encode_block_frame(frame, pack_aux(type, count), body.data(), body.size());
  out.insert(out.end(), frame, frame + kBlockFrameBytes);
  out.insert(out.end(), body.begin(), body.end());
}

void store_f64(unsigned char* p, double v) {
  store_le64(p, std::bit_cast<std::uint64_t>(v));
}

double load_f64(const unsigned char* p) {
  return std::bit_cast<double>(load_le64(p));
}

}  // namespace

const char* control_type_name(ControlType type) {
  switch (type) {
    case ControlType::kHello:
      return "hello";
    case ControlType::kProgress:
      return "progress";
    case ControlType::kCheckpoint:
      return "checkpoint";
    case ControlType::kFinals:
      return "finals";
    case ControlType::kSummary:
      return "summary";
    case ControlType::kMetrics:
      return "metrics";
  }
  return "unknown";
}

void encode_control_header(std::vector<unsigned char>& out) {
  unsigned char raw[kControlHeaderBytes];
  store_le64(raw + 0, kControlMagic);
  store_le32(raw + 8, kControlVersion);
  store_le32(raw + 12, 0);
  out.insert(out.end(), raw, raw + kControlHeaderBytes);
}

void encode_control_hello(const ControlHello& hello,
                          std::vector<unsigned char>& out) {
  std::vector<unsigned char> body(kHelloBytes);
  store_le32(body.data() + 0, hello.partition_id);
  store_le32(body.data() + 4, hello.num_partitions);
  store_le32(body.data() + 8, hello.pf_version);
  store_le32(body.data() + 12, hello.num_servers);
  store_le64(body.data() + 16, hello.resume_events);
  store_le64(body.data() + 24, hello.base_seed);
  append_frame(ControlType::kHello, 0, body, out);
}

void encode_control_progress(const ControlProgress& progress,
                             std::vector<unsigned char>& out) {
  std::vector<unsigned char> body(kProgressBytes);
  store_le64(body.data() + 0, progress.events_ingested);
  store_le64(body.data() + 8, progress.batches);
  append_frame(ControlType::kProgress, 0, body, out);
}

void encode_control_checkpoint(const ControlCheckpoint& checkpoint,
                               std::vector<unsigned char>& out) {
  std::vector<unsigned char> body(kCheckpointBytes);
  store_le64(body.data(), checkpoint.events_ingested);
  append_frame(ControlType::kCheckpoint, 0, body, out);
}

void encode_control_finals(const EngineObjectFinal* finals, std::size_t count,
                           std::vector<unsigned char>& out) {
  REPL_REQUIRE_MSG(count >= 1 && count <= kControlFinalsChunk,
                   "finals frame must hold 1.." << kControlFinalsChunk
                                                << " records, got " << count);
  std::vector<unsigned char> body(count * kControlFinalsRecordBytes);
  for (std::size_t i = 0; i < count; ++i) {
    unsigned char* p = body.data() + i * kControlFinalsRecordBytes;
    store_le64(p + 0, finals[i].id);
    store_le64(p + 8, static_cast<std::uint64_t>(finals[i].events));
    store_le64(p + 16, static_cast<std::uint64_t>(finals[i].num_local));
    store_le64(p + 24, static_cast<std::uint64_t>(finals[i].num_transfers));
    store_f64(p + 32, finals[i].online_cost);
    store_f64(p + 40, finals[i].lower_bound);
  }
  append_frame(ControlType::kFinals, static_cast<std::uint32_t>(count), body,
               out);
}

void encode_control_summary(const ControlSummary& summary,
                            std::vector<unsigned char>& out) {
  std::vector<unsigned char> body(kSummaryBytes);
  store_le64(body.data() + 0, summary.objects);
  store_le64(body.data() + 8, summary.events);
  store_le64(body.data() + 16, summary.num_local);
  store_le64(body.data() + 24, summary.num_transfers);
  store_f64(body.data() + 32, summary.online_cost);
  store_f64(body.data() + 40, summary.lower_bound);
  append_frame(ControlType::kSummary, 0, body, out);
}

void encode_control_metrics(const ControlMetrics& metrics,
                            std::vector<unsigned char>& out) {
  std::vector<unsigned char> body(kMetricsPrefixBytes);
  store_le64(body.data() + 0, metrics.trace_id);
  store_le64(body.data() + 8, metrics.span_id);
  obs::encode_samples(metrics.samples, body);
  REPL_REQUIRE_MSG(body.size() <= kMaxControlBodyBytes,
                   "encoded metrics snapshot is "
                       << body.size() << " bytes, the control frame cap is "
                       << kMaxControlBodyBytes);
  append_frame(ControlType::kMetrics,
               static_cast<std::uint32_t>(metrics.samples.size()), body, out);
}

ClusterControlAssembler::ClusterControlAssembler(std::string name,
                                                 std::size_t max_body_bytes)
    : name_(std::move(name)), max_body_bytes_(max_body_bytes) {
  buffer_.resize(kControlHeaderBytes);
}

void ClusterControlAssembler::fail(const std::string& what) {
  dead_ = true;
  throw std::runtime_error(name_ + ": " + what + " (frame " +
                           std::to_string(frames_) + ", byte offset " +
                           std::to_string(offset_) + ")");
}

void ClusterControlAssembler::feed(const unsigned char* data, std::size_t size,
                                   std::vector<ControlMessage>& out) {
  if (dead_) {
    throw std::runtime_error(name_ + ": control stream already failed");
  }
  try {
    while (size > 0) {
      const std::size_t take = std::min(target_ - pending_, size);
      std::memcpy(buffer_.data() + pending_, data, take);
      pending_ += take;
      data += take;
      size -= take;
      offset_ += take;
      if (pending_ < target_) return;
      switch (state_) {
        case State::kHeader:
          finish_header();
          break;
        case State::kFrame:
          finish_frame();
          // A zero-length body completes instantly (the v2 wire's empty-
          // trailing-frame case); the type check inside rejects it, but
          // it must reject *now*, not hang at_boundary() forever.
          if (state_ == State::kBody && target_ == 0) finish_body(out);
          break;
        case State::kBody:
          finish_body(out);
          break;
      }
    }
  } catch (...) {
    dead_ = true;
    throw;
  }
}

void ClusterControlAssembler::finish_header() {
  if (load_le64(buffer_.data()) != kControlMagic) {
    fail("bad control stream magic");
  }
  const std::uint32_t version = load_le32(buffer_.data() + 8);
  if (version != kControlVersion) {
    fail("unsupported control stream version " + std::to_string(version));
  }
  if (load_le32(buffer_.data() + 12) != 0) {
    fail("control stream header reserved field is not zero");
  }
  state_ = State::kFrame;
  pending_ = 0;
  target_ = kBlockFrameBytes;
  if (buffer_.size() < kBlockFrameBytes) buffer_.resize(kBlockFrameBytes);
}

void ClusterControlAssembler::finish_frame() {
  switch (parse_block_frame(buffer_.data(), frame_, max_body_bytes_)) {
    case BlockFrameStatus::kOk:
      break;
    case BlockFrameStatus::kBadFrameCrc:
      fail("frame CRC mismatch (corrupt frame header)");
    case BlockFrameStatus::kImplausibleLength:
      fail("implausible frame length " + std::to_string(frame_.body_len));
  }
  state_ = State::kBody;
  pending_ = 0;
  target_ = frame_.body_len;
  if (buffer_.size() < target_) buffer_.resize(target_);
}

void ClusterControlAssembler::finish_body(std::vector<ControlMessage>& out) {
  if (!verify_block_payload(frame_, buffer_.data(), pending_)) {
    fail("control payload CRC mismatch");
  }
  const std::uint32_t raw_type = frame_.aux >> 24;
  const std::uint32_t count = frame_.aux & 0x00ffffffu;
  if (raw_type < 1 ||
      raw_type > static_cast<std::uint32_t>(ControlType::kMetrics)) {
    fail("unknown control message type " + std::to_string(raw_type));
  }
  decode_message(static_cast<ControlType>(raw_type), count, out);
  ++frames_;
  state_ = State::kFrame;
  pending_ = 0;
  target_ = kBlockFrameBytes;
}

void ClusterControlAssembler::decode_message(ControlType type,
                                             std::uint32_t count,
                                             std::vector<ControlMessage>& out) {
  const unsigned char* body = buffer_.data();
  const std::size_t size = pending_;
  const auto require_size = [&](std::size_t expected) {
    if (size != expected) {
      fail(std::string(control_type_name(type)) + " body is " +
           std::to_string(size) + " bytes, expected " +
           std::to_string(expected));
    }
  };
  const auto require_zero_count = [&] {
    if (count != 0) {
      fail(std::string(control_type_name(type)) +
           " frame declares item count " + std::to_string(count) +
           " (only finals frames carry items)");
    }
  };
  if (summary_seen_) {
    fail(std::string(control_type_name(type)) +
         " after summary (summary is terminal)");
  }
  if (!hello_seen_ && type != ControlType::kHello) {
    fail(std::string(control_type_name(type)) +
         " before hello (hello must open the stream)");
  }
  if (finals_seen_ && type != ControlType::kFinals &&
      type != ControlType::kSummary) {
    fail(std::string(control_type_name(type)) +
         " after finals began (only finals/summary may follow)");
  }

  ControlMessage message;
  message.type = type;
  switch (type) {
    case ControlType::kHello: {
      if (hello_seen_) fail("duplicate hello");
      require_zero_count();
      require_size(kHelloBytes);
      ControlHello hello;
      hello.partition_id = load_le32(body + 0);
      hello.num_partitions = load_le32(body + 4);
      hello.pf_version = load_le32(body + 8);
      hello.num_servers = load_le32(body + 12);
      hello.resume_events = load_le64(body + 16);
      hello.base_seed = load_le64(body + 24);
      if (hello.num_partitions < 1) fail("hello declares 0 partitions");
      if (hello.partition_id >= hello.num_partitions) {
        fail("hello partition id " + std::to_string(hello.partition_id) +
             " out of range [0, " + std::to_string(hello.num_partitions) +
             ")");
      }
      if (hello.num_servers < 1) fail("hello declares 0 servers");
      hello_ = hello;
      hello_seen_ = true;
      progress_events_ = hello.resume_events;
      checkpoint_events_ = hello.resume_events;
      message.hello = hello;
      break;
    }
    case ControlType::kProgress: {
      require_zero_count();
      require_size(kProgressBytes);
      ControlProgress progress;
      progress.events_ingested = load_le64(body + 0);
      progress.batches = load_le64(body + 8);
      if (progress.events_ingested < progress_events_) {
        fail("progress regressed: " +
             std::to_string(progress.events_ingested) + " events after " +
             std::to_string(progress_events_));
      }
      if (progress.batches < progress_batches_) {
        fail("progress batch count regressed: " +
             std::to_string(progress.batches) + " after " +
             std::to_string(progress_batches_));
      }
      progress_events_ = progress.events_ingested;
      progress_batches_ = progress.batches;
      message.progress = progress;
      break;
    }
    case ControlType::kCheckpoint: {
      require_zero_count();
      require_size(kCheckpointBytes);
      ControlCheckpoint checkpoint;
      checkpoint.events_ingested = load_le64(body);
      if (checkpoint.events_ingested < checkpoint_events_) {
        fail("checkpoint position regressed: " +
             std::to_string(checkpoint.events_ingested) + " events after " +
             std::to_string(checkpoint_events_));
      }
      checkpoint_events_ = checkpoint.events_ingested;
      message.checkpoint = checkpoint;
      break;
    }
    case ControlType::kFinals: {
      if (count < 1) fail("finals frame holds no records");
      require_size(static_cast<std::size_t>(count) *
                   kControlFinalsRecordBytes);
      message.finals.reserve(count);
      for (std::uint32_t i = 0; i < count; ++i) {
        const unsigned char* p = body + i * kControlFinalsRecordBytes;
        EngineObjectFinal final;
        final.id = load_le64(p + 0);
        final.events = static_cast<std::size_t>(load_le64(p + 8));
        final.num_local = static_cast<std::size_t>(load_le64(p + 16));
        final.num_transfers = static_cast<std::size_t>(load_le64(p + 24));
        final.online_cost = load_f64(p + 32);
        final.lower_bound = load_f64(p + 40);
        if (finals_records_ > 0 && final.id <= last_final_id_) {
          fail("finals id " + std::to_string(final.id) +
               " does not increase past " + std::to_string(last_final_id_) +
               " (finals must be id-sorted)");
        }
        last_final_id_ = final.id;
        ++finals_records_;
        message.finals.push_back(final);
      }
      finals_seen_ = true;
      break;
    }
    case ControlType::kSummary: {
      require_zero_count();
      require_size(kSummaryBytes);
      ControlSummary summary;
      summary.objects = load_le64(body + 0);
      summary.events = load_le64(body + 8);
      summary.num_local = load_le64(body + 16);
      summary.num_transfers = load_le64(body + 24);
      summary.online_cost = load_f64(body + 32);
      summary.lower_bound = load_f64(body + 40);
      if (summary.objects != finals_records_) {
        fail("summary claims " + std::to_string(summary.objects) +
             " objects but " + std::to_string(finals_records_) +
             " finals records were streamed");
      }
      summary_seen_ = true;
      message.summary = summary;
      break;
    }
    case ControlType::kMetrics: {
      if (size < kMetricsPrefixBytes) {
        fail("metrics body is " + std::to_string(size) +
             " bytes, the trace prefix alone is " +
             std::to_string(kMetricsPrefixBytes));
      }
      ControlMetrics metrics;
      metrics.trace_id = load_le64(body + 0);
      metrics.span_id = load_le64(body + 8);
      metrics.samples =
          obs::decode_samples(body + kMetricsPrefixBytes,
                              size - kMetricsPrefixBytes, count, name_);
      message.metrics = std::move(metrics);
      break;
    }
  }
  out.push_back(std::move(message));
}

}  // namespace repl
