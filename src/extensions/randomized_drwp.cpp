#include "extensions/randomized_drwp.hpp"

#include <cmath>
#include <sstream>

namespace repl {

RandomizedDrwpPolicy::RandomizedDrwpPolicy(double alpha, std::uint64_t seed)
    : DrwpPolicy(alpha), seed_(seed), rng_(seed) {}

void RandomizedDrwpPolicy::reset(const SystemConfig& config,
                                 const Prediction& pred0, EventSink& sink) {
  rng_ = Rng(seed_);  // reproducible runs
  DrwpPolicy::reset(config, pred0, sink);
}

double RandomizedDrwpPolicy::choose_duration(const Prediction& pred,
                                             const ServeContext&) {
  if (pred.within_lambda) return lambda();
  // z in [0, α] with density proportional to e^(z/α); inverse-CDF sample.
  const double u = rng_.next_double();
  const double z = alpha() * std::log1p(u * (std::exp(1.0) - 1.0));
  // Guard against a zero duration (u = 0).
  return std::max(z, 1e-9 * alpha()) * lambda();
}

std::string RandomizedDrwpPolicy::name() const {
  std::ostringstream os;
  os << "randomized-drwp(alpha=" << alpha() << ")";
  return os.str();
}

std::unique_ptr<ReplicationPolicy> RandomizedDrwpPolicy::clone() const {
  return std::make_unique<RandomizedDrwpPolicy>(*this);
}

}  // namespace repl
