#include "obs/federation.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <stdexcept>

#include "codec/endian.hpp"

namespace repl::obs {

namespace {

// Wire layout per sample (little-endian):
//   u8   type (0 counter, 1 gauge, 2 histogram)
//   u16  name_len,  bytes
//   u16  help_len,  bytes
//   u16  label_count, then per label: u16 key_len, bytes, u16 val_len, bytes
//   counter:   u64 counter_value
//   gauge:     f64 value
//   histogram: u16 bound_count, f64 * bounds,
//              u64 cumulative * (bounds + 1), f64 sum
// The message frame already carries a CRC (codec/block.hpp), so the
// codec itself adds none.

void put_u8(std::vector<unsigned char>& out, std::uint8_t v) {
  out.push_back(v);
}

void put_u16(std::vector<unsigned char>& out, std::uint16_t v) {
  out.push_back(static_cast<unsigned char>(v));
  out.push_back(static_cast<unsigned char>(v >> 8));
}

void put_u64(std::vector<unsigned char>& out, std::uint64_t v) {
  const std::size_t at = out.size();
  out.resize(at + 8);
  store_le64(out.data() + at, v);
}

void put_f64(std::vector<unsigned char>& out, double v) {
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}

void put_string(std::vector<unsigned char>& out, const std::string& text,
                const char* field) {
  if (text.size() > kMaxSampleStringBytes) {
    throw std::invalid_argument(std::string("sample ") + field + " is " +
                                std::to_string(text.size()) +
                                " bytes, the codec caps at " +
                                std::to_string(kMaxSampleStringBytes));
  }
  put_u16(out, static_cast<std::uint16_t>(text.size()));
  out.insert(out.end(), text.begin(), text.end());
}

/// Bounded cursor over the encoded bytes; every read is range-checked.
struct Cursor {
  const unsigned char* data;
  std::size_t size;
  std::size_t at = 0;
  const std::string& what;

  void need(std::size_t n, const char* field) {
    if (size - at < n) {
      throw std::runtime_error(what + ": metrics sample truncated in " +
                               field + " at byte " + std::to_string(at));
    }
  }

  std::uint8_t u8(const char* field) {
    need(1, field);
    return data[at++];
  }

  std::uint16_t u16(const char* field) {
    need(2, field);
    const std::uint16_t v = static_cast<std::uint16_t>(
        data[at] | (std::uint16_t{data[at + 1]} << 8));
    at += 2;
    return v;
  }

  std::uint64_t u64(const char* field) {
    need(8, field);
    const std::uint64_t v = load_le64(data + at);
    at += 8;
    return v;
  }

  double f64(const char* field) { return std::bit_cast<double>(u64(field)); }

  std::string string(const char* field, std::size_t cap) {
    const std::uint16_t len = u16(field);
    if (len > cap) {
      throw std::runtime_error(what + ": metrics sample " + field + " is " +
                               std::to_string(len) + " bytes, cap is " +
                               std::to_string(cap));
    }
    need(len, field);
    std::string out(reinterpret_cast<const char*>(data + at), len);
    at += len;
    return out;
  }
};

std::string series_key(const Sample& s) {
  std::string key = s.name;
  for (const auto& [k, v] : s.labels) {
    key += '\x1f';
    key += k;
    key += '\x1e';
    key += v;
  }
  return key;
}

}  // namespace

void encode_samples(const std::vector<Sample>& samples,
                    std::vector<unsigned char>& out) {
  if (samples.size() > kMaxEncodedSamples) {
    throw std::invalid_argument("cannot encode " +
                                std::to_string(samples.size()) +
                                " metric samples (cap " +
                                std::to_string(kMaxEncodedSamples) + ")");
  }
  for (const Sample& s : samples) {
    put_u8(out, static_cast<std::uint8_t>(s.type));
    if (s.name.empty()) {
      throw std::invalid_argument("cannot encode a sample with no name");
    }
    put_string(out, s.name, "name");
    put_string(out, s.help, "help");
    if (s.labels.size() > kMaxSampleLabels) {
      throw std::invalid_argument(
          "sample " + s.name + " carries " + std::to_string(s.labels.size()) +
          " labels, the codec caps at " + std::to_string(kMaxSampleLabels));
    }
    put_u16(out, static_cast<std::uint16_t>(s.labels.size()));
    for (const auto& [k, v] : s.labels) {
      put_string(out, k, "label key");
      put_string(out, v, "label value");
    }
    switch (s.type) {
      case MetricType::kCounter:
        put_u64(out, s.counter_value);
        break;
      case MetricType::kGauge:
        put_f64(out, s.value);
        break;
      case MetricType::kHistogram: {
        if (s.bounds.size() > kMaxSampleBounds) {
          throw std::invalid_argument(
              "sample " + s.name + " has " + std::to_string(s.bounds.size()) +
              " histogram bounds, the codec caps at " +
              std::to_string(kMaxSampleBounds));
        }
        if (s.cumulative.size() != s.bounds.size() + 1) {
          throw std::invalid_argument(
              "sample " + s.name + " histogram has " +
              std::to_string(s.cumulative.size()) + " cumulative buckets for " +
              std::to_string(s.bounds.size()) + " bounds");
        }
        put_u16(out, static_cast<std::uint16_t>(s.bounds.size()));
        for (double b : s.bounds) put_f64(out, b);
        for (std::uint64_t c : s.cumulative) put_u64(out, c);
        put_f64(out, s.sum);
        break;
      }
    }
  }
}

std::vector<Sample> decode_samples(const unsigned char* data,
                                   std::size_t size,
                                   std::size_t expected_count,
                                   const std::string& what) {
  if (expected_count > kMaxEncodedSamples) {
    throw std::runtime_error(what + ": metrics message declares " +
                             std::to_string(expected_count) +
                             " samples, cap is " +
                             std::to_string(kMaxEncodedSamples));
  }
  Cursor cur{data, size, 0, what};
  std::vector<Sample> samples;
  samples.reserve(expected_count);
  for (std::size_t i = 0; i < expected_count; ++i) {
    Sample s;
    const std::uint8_t raw_type = cur.u8("type");
    if (raw_type > 2) {
      throw std::runtime_error(what + ": metrics sample " + std::to_string(i) +
                               " has unknown type " +
                               std::to_string(raw_type));
    }
    s.type = static_cast<MetricType>(raw_type);
    s.name = cur.string("name", kMaxSampleStringBytes);
    if (s.name.empty()) {
      throw std::runtime_error(what + ": metrics sample " + std::to_string(i) +
                               " has an empty name");
    }
    s.help = cur.string("help", kMaxSampleStringBytes);
    const std::uint16_t labels = cur.u16("label count");
    if (labels > kMaxSampleLabels) {
      throw std::runtime_error(what + ": metrics sample " + s.name +
                               " declares " + std::to_string(labels) +
                               " labels, cap is " +
                               std::to_string(kMaxSampleLabels));
    }
    for (std::uint16_t l = 0; l < labels; ++l) {
      std::string key = cur.string("label key", kMaxSampleStringBytes);
      std::string value = cur.string("label value", kMaxSampleStringBytes);
      if (key.empty()) {
        throw std::runtime_error(what + ": metrics sample " + s.name +
                                 " has an empty label key");
      }
      s.labels.emplace_back(std::move(key), std::move(value));
    }
    switch (s.type) {
      case MetricType::kCounter:
        s.counter_value = cur.u64("counter value");
        s.value = static_cast<double>(s.counter_value);
        break;
      case MetricType::kGauge:
        s.value = cur.f64("gauge value");
        break;
      case MetricType::kHistogram: {
        const std::uint16_t bounds = cur.u16("bound count");
        if (bounds > kMaxSampleBounds) {
          throw std::runtime_error(what + ": metrics sample " + s.name +
                                   " declares " + std::to_string(bounds) +
                                   " histogram bounds, cap is " +
                                   std::to_string(kMaxSampleBounds));
        }
        s.bounds.resize(bounds);
        for (std::uint16_t b = 0; b < bounds; ++b) {
          s.bounds[b] = cur.f64("histogram bound");
          if (!std::isfinite(s.bounds[b]) ||
              (b > 0 && s.bounds[b] <= s.bounds[b - 1])) {
            throw std::runtime_error(what + ": metrics sample " + s.name +
                                     " histogram bounds are not strictly "
                                     "increasing finite values");
          }
        }
        s.cumulative.resize(bounds + std::size_t{1});
        for (std::size_t b = 0; b < s.cumulative.size(); ++b) {
          s.cumulative[b] = cur.u64("cumulative bucket");
          if (b > 0 && s.cumulative[b] < s.cumulative[b - 1]) {
            throw std::runtime_error(what + ": metrics sample " + s.name +
                                     " histogram buckets are not cumulative");
          }
        }
        s.count = s.cumulative.back();
        s.sum = cur.f64("histogram sum");
        break;
      }
    }
    samples.push_back(std::move(s));
  }
  if (cur.at != size) {
    throw std::runtime_error(what + ": metrics message carries " +
                             std::to_string(size - cur.at) +
                             " trailing bytes past " +
                             std::to_string(expected_count) + " samples");
  }
  return samples;
}

void sort_samples(std::vector<Sample>& samples) {
  std::sort(samples.begin(), samples.end(),
            [](const Sample& a, const Sample& b) {
              if (a.name != b.name) return a.name < b.name;
              return a.labels < b.labels;
            });
}

void FederatedMetrics::update(std::uint32_t partition,
                              const std::vector<Sample>& samples) {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, Sample>& cache = partitions_[partition];
  for (const Sample& s : samples) {
    auto [it, inserted] = cache.emplace(series_key(s), s);
    if (inserted) continue;
    Sample& held = it->second;
    if (held.type == MetricType::kCounter && s.type == MetricType::kCounter &&
        s.counter_value < held.counter_value) {
      // A respawned worker re-reports from its resume offset; the
      // federated view stays monotone by holding the high-water mark
      // until the replay catches back up.
      continue;
    }
    held = s;
  }
}

std::vector<Sample> FederatedMetrics::collect() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Sample> out;
  for (const auto& [partition, cache] : partitions_) {
    const std::string partition_text = std::to_string(partition);
    for (const auto& [key, sample] : cache) {
      (void)key;
      Sample s = sample;
      // Insert sorted by key, matching the registry's normalized order.
      const auto pos = std::lower_bound(
          s.labels.begin(), s.labels.end(), std::string("partition"),
          [](const auto& kv, const std::string& k) { return kv.first < k; });
      s.labels.emplace(pos, "partition", partition_text);
      out.push_back(std::move(s));
    }
  }
  sort_samples(out);
  return out;
}

std::uint64_t FederatedMetrics::counter_value(std::uint32_t partition,
                                              const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto pit = partitions_.find(partition);
  if (pit == partitions_.end()) return 0;
  const auto sit = pit->second.find(name);  // unlabeled: key == name
  if (sit == pit->second.end() ||
      sit->second.type != MetricType::kCounter) {
    return 0;
  }
  return sit->second.counter_value;
}

std::vector<std::uint32_t> FederatedMetrics::partitions() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::uint32_t> out;
  out.reserve(partitions_.size());
  for (const auto& [partition, cache] : partitions_) {
    (void)cache;
    out.push_back(partition);
  }
  return out;
}

}  // namespace repl::obs
