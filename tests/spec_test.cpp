// Component-spec API tests: grammar round-trip (including a randomized
// property test over every registered component), precise error
// diagnostics, and registry completeness — every concrete
// ReplicationPolicy/Predictor in src/ must be constructible through the
// registry.
#include <algorithm>
#include <cstdio>
#include <functional>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "api/registry.hpp"
#include "api/spec.hpp"
#include "baselines/naive.hpp"
#include "baselines/wang2021.hpp"
#include "core/adaptive_drwp.hpp"
#include "core/drwp.hpp"
#include "extensions/randomized_drwp.hpp"
#include "extensions/weighted_drwp.hpp"
#include "offline/planned_policy.hpp"
#include "predictor/ensemble.hpp"
#include "predictor/fixed.hpp"
#include "predictor/history.hpp"
#include "predictor/last_gap.hpp"
#include "predictor/noisy.hpp"
#include "predictor/oracle.hpp"
#include "trace/trace.hpp"
#include "util/rng.hpp"

namespace repl {
namespace {

ComponentRegistry& registry() { return ComponentRegistry::instance(); }

BuildContext offline_context(const Trace& trace) {
  BuildContext ctx;
  ctx.config.num_servers = trace.num_servers();
  ctx.config.transfer_cost = 10.0;
  ctx.seed = 0xfeedULL;
  ctx.trace = &trace;
  return ctx;
}

Trace small_trace() {
  std::vector<Request> requests;
  double t = 0.0;
  Rng rng(0x7ace);
  for (int i = 0; i < 12; ++i) {
    t += rng.uniform(0.5, 30.0);
    requests.push_back(Request{t, static_cast<int>(rng.uniform_index(4))});
  }
  return Trace(4, std::move(requests));
}

// ---------------------------------------------------------------------
// Grammar
// ---------------------------------------------------------------------

TEST(SpecParserTest, ParsesBareNameParamsAndNesting) {
  const ComponentSpec bare = parse_component_spec("drwp");
  EXPECT_EQ(bare.name, "drwp");
  EXPECT_TRUE(bare.params.empty());
  EXPECT_TRUE(bare.children.empty());

  const ComponentSpec params = parse_component_spec("drwp(alpha=0.5)");
  ASSERT_EQ(params.params.size(), 1u);
  EXPECT_EQ(params.params[0].first, "alpha");
  EXPECT_EQ(params.params[0].second, "0.5");

  const ComponentSpec nested = parse_component_spec(
      "ensemble(last_gap,history(ewma=0.3),penalty=0.25)");
  ASSERT_EQ(nested.children.size(), 2u);
  EXPECT_EQ(nested.children[0].name, "last_gap");
  EXPECT_EQ(nested.children[1].name, "history");
  ASSERT_EQ(nested.children[1].params.size(), 1u);
  EXPECT_EQ(nested.children[1].params[0].first, "ewma");
  ASSERT_EQ(nested.params.size(), 1u);
  EXPECT_EQ(nested.params[0].first, "penalty");
}

TEST(SpecParserTest, WhitespaceIsInsignificant) {
  EXPECT_EQ(parse_component_spec("  drwp ( alpha = 0.5 ) "),
            parse_component_spec("drwp(alpha=0.5)"));
  EXPECT_EQ(parse_component_spec("ensemble( last_gap , history )"),
            parse_component_spec("ensemble(last_gap,history)"));
}

TEST(SpecParserTest, EmptyArgumentListEqualsBareName) {
  EXPECT_EQ(parse_component_spec("conventional()"),
            parse_component_spec("conventional"));
}

TEST(SpecParserTest, PrintParsesBackToTheSameSpec) {
  for (const char* text :
       {"drwp", "drwp(alpha=0.5)", "adaptive(alpha=0.3,beta=0.1,warmup=50)",
        "ensemble(last_gap,history(ewma=0.3),penalty=0.25)",
        "ensemble(ensemble(fixed(within=true),last_gap),history)",
        "noisy(accuracy=0.75)"}) {
    const ComponentSpec spec = parse_component_spec(text);
    const std::string printed = print_component_spec(spec);
    EXPECT_EQ(parse_component_spec(printed), spec) << text;
    // Printing is canonical w.r.t. itself: a second round trip is the
    // identity on the string too.
    EXPECT_EQ(print_component_spec(parse_component_spec(printed)), printed);
  }
}

/// Randomized property test: generate specs from every registered
/// component's schema (random parameter subsets, random valid values,
/// random expert nesting for ensembles) and require parse ∘ print ==
/// identity plus canonicalization idempotence.
class SpecGenerator {
 public:
  explicit SpecGenerator(std::uint64_t seed) : rng_(seed) {}

  ComponentSpec random_spec(ComponentKind kind, int depth = 0) {
    const std::vector<const ComponentInfo*> infos =
        registry().components(kind);
    const ComponentInfo* info;
    do {
      info = infos[rng_.uniform_index(infos.size())];
      // Nested components only where allowed; avoid deep recursion.
    } while (info->min_children > 0 && depth >= 2);
    ComponentSpec spec;
    spec.name = info->name;
    for (const ParamInfo& param : info->params) {
      if (!rng_.bernoulli(0.6)) continue;  // random subset
      spec.params.emplace_back(param.key, random_value(param));
    }
    if (info->max_children > 0) {
      const std::size_t count =
          info->min_children +
          rng_.uniform_index(3 - info->min_children + 1);
      for (std::size_t i = 0; i < count; ++i) {
        spec.children.push_back(random_spec(kind, depth + 1));
      }
    }
    return spec;
  }

 private:
  std::string random_value(const ParamInfo& param) {
    switch (param.type) {
      case ParamType::kDouble: {
        // Stay inside the parameter's declared range (alpha > 0,
        // ewma/penalty in (0, 1], accuracy in [0, 1], ...).
        const double lo = std::max(param.min_value, 0.01);
        const double hi = std::min(param.max_value, 2.0);
        const double v = rng_.uniform(lo, hi);
        char buffer[32];
        const int n = std::snprintf(buffer, sizeof(buffer), "%.3f", v);
        return std::string(buffer, static_cast<std::size_t>(n));
      }
      case ParamType::kUint:
        return std::to_string(rng_.uniform_index(500));
      case ParamType::kBool:
        return rng_.bernoulli(0.5) ? "true" : "false";
    }
    return "0";
  }

  Rng rng_;
};

TEST(SpecParserTest, RoundTripPropertyOverAllRegisteredComponents) {
  SpecGenerator generator(0x5eed);
  for (int i = 0; i < 200; ++i) {
    for (const ComponentKind kind :
         {ComponentKind::kPolicy, ComponentKind::kPredictor}) {
      const ComponentSpec spec = generator.random_spec(kind);
      const std::string printed = print_component_spec(spec);
      SCOPED_TRACE(printed);
      EXPECT_EQ(parse_component_spec(printed), spec);

      // Canonicalization is validated, deterministic, and idempotent:
      // canonical(parse(print(canonical(s)))) == canonical(s).
      const ComponentSpec canonical = registry().canonicalize(kind, spec);
      const std::string canonical_text = print_component_spec(canonical);
      EXPECT_EQ(registry().canonical_string(kind, canonical_text),
                canonical_text);
      // And every declared parameter appears in the canonical form.
      EXPECT_EQ(canonical.params.size(),
                registry().info(kind, spec.name).params.size());
    }
  }
}

// ---------------------------------------------------------------------
// Diagnostics
// ---------------------------------------------------------------------

void expect_spec_error(const std::function<void()>& action,
                       const std::string& needle) {
  try {
    action();
    FAIL() << "expected SpecError containing \"" << needle << "\"";
  } catch (const SpecError& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << e.what();
  }
}

TEST(SpecErrorTest, SyntaxErrorsNamePositionAndCause) {
  expect_spec_error([] { parse_component_spec(""); }, "component name");
  expect_spec_error([] { parse_component_spec("Drwp"); }, "lowercase");
  expect_spec_error([] { parse_component_spec("drwp(alpha=0.5"); },
                    "expected ',' or ')'");
  expect_spec_error([] { parse_component_spec("drwp(alpha=)"); },
                    "value after '='");
  expect_spec_error([] { parse_component_spec("drwp)trailing"); },
                    "trailing characters");
  expect_spec_error(
      [] { parse_component_spec("drwp(alpha=1,alpha=2)"); },
      "duplicate parameter 'alpha'");
}

TEST(SpecErrorTest, UnknownComponentListsRegisteredOnes) {
  expect_spec_error(
      [] {
        registry().canonical_string(ComponentKind::kPolicy, "drpw");
      },
      "unknown policy 'drpw'");
  expect_spec_error(
      [] {
        registry().canonical_string(ComponentKind::kPolicy, "drpw");
      },
      "registered policies");
  expect_spec_error(
      [] {
        registry().canonical_string(ComponentKind::kPredictor, "lastgap");
      },
      "registered predictors");
}

TEST(SpecErrorTest, UnknownParameterNamesTheComponentAndItsParameters) {
  expect_spec_error(
      [] {
        registry().canonical_string(ComponentKind::kPolicy,
                                    "drwp(gamma=1)");
      },
      "no parameter 'gamma'");
  expect_spec_error(
      [] {
        registry().canonical_string(ComponentKind::kPolicy,
                                    "drwp(gamma=1)");
      },
      "alpha");
  expect_spec_error(
      [] {
        registry().canonical_string(ComponentKind::kPolicy,
                                    "conventional(alpha=1)");
      },
      "it takes none");
}

TEST(SpecErrorTest, IllTypedValuesAreDiagnosedPerDeclaredType) {
  expect_spec_error(
      [] {
        registry().canonical_string(ComponentKind::kPolicy,
                                    "drwp(alpha=abc)");
      },
      "not a finite number");
  expect_spec_error(
      [] {
        registry().canonical_string(ComponentKind::kPolicy,
                                    "adaptive(warmup=1.5)");
      },
      "not a non-negative integer");
  expect_spec_error(
      [] {
        registry().canonical_string(ComponentKind::kPredictor,
                                    "fixed(within=maybe)");
      },
      "not a boolean");
}

TEST(SpecErrorTest, OutOfRangeValuesFailAtTheSpecBoundary) {
  // Range checks mirror the component constructors' REQUIREs, so a bad
  // value dies here — with the parameter named — instead of deep inside
  // a serve after gigabytes of workload generation.
  expect_spec_error(
      [] {
        registry().canonical_string(ComponentKind::kPolicy,
                                    "drwp(alpha=0)");
      },
      "out of range");
  expect_spec_error(
      [] {
        registry().canonical_string(ComponentKind::kPolicy,
                                    "drwp(alpha=-1)");
      },
      "out of range");
  expect_spec_error(
      [] {
        registry().canonical_string(ComponentKind::kPolicy,
                                    "drwp(alpha=inf)");
      },
      "not a finite number");
  expect_spec_error(
      [] {
        registry().canonical_string(ComponentKind::kPredictor,
                                    "history(ewma=1.5)");
      },
      "out of range");
  expect_spec_error(
      [] {
        registry().canonical_string(ComponentKind::kPredictor,
                                    "noisy(accuracy=1.1)");
      },
      "out of range");
  expect_spec_error(
      [] {
        registry().canonical_string(
            ComponentKind::kPredictor,
            "ensemble(last_gap,penalty=0)");
      },
      "out of range");
}

TEST(SpecErrorTest, ChildCountIsEnforced) {
  expect_spec_error(
      [] {
        registry().canonical_string(ComponentKind::kPolicy,
                                    "drwp(conventional)");
      },
      "takes no nested components");
  expect_spec_error(
      [] {
        registry().canonical_string(ComponentKind::kPredictor, "ensemble");
      },
      "nested components, got 0");
}

TEST(SpecErrorTest, ClairvoyantComponentsNeedATrace) {
  BuildContext online;
  online.config.num_servers = 4;
  online.config.transfer_cost = 10.0;
  expect_spec_error(
      [&] { registry().build_predictor("oracle", online); }, "clairvoyant");
  // Recursively: an ensemble is clairvoyant iff any expert is.
  expect_spec_error(
      [&] {
        registry().build_predictor("ensemble(last_gap,oracle)", online);
      },
      "clairvoyant");
  EXPECT_TRUE(registry().requires_trace(
      ComponentKind::kPredictor,
      parse_component_spec("ensemble(last_gap,noisy(accuracy=0.5))")));
  EXPECT_FALSE(registry().requires_trace(
      ComponentKind::kPredictor,
      parse_component_spec("ensemble(last_gap,history)")));
  // With a trace they construct fine.
  const Trace trace = small_trace();
  EXPECT_NE(registry().build_predictor("oracle", offline_context(trace)),
            nullptr);
}

// ---------------------------------------------------------------------
// Canonicalization
// ---------------------------------------------------------------------

TEST(SpecCanonicalTest, FillsDefaultsSortsParamsAndNormalizesValues) {
  EXPECT_EQ(registry().canonical_string(ComponentKind::kPolicy, "drwp"),
            "drwp(alpha=0.3)");
  EXPECT_EQ(registry().canonical_string(ComponentKind::kPolicy,
                                        "drwp(alpha=0.50)"),
            "drwp(alpha=0.5)");
  EXPECT_EQ(registry().canonical_string(
                ComponentKind::kPolicy,
                "adaptive(warmup=007,alpha=1.5)"),
            "adaptive(alpha=1.5,beta=0.1,warmup=7)");
  EXPECT_EQ(registry().canonical_string(ComponentKind::kPredictor,
                                        "fixed(within=1)"),
            "fixed(within=true)");
  // Semantically equal specs canonicalize to the same string.
  EXPECT_EQ(registry().canonical_string(ComponentKind::kPolicy,
                                        "adaptive(alpha=0.30)"),
            registry().canonical_string(ComponentKind::kPolicy,
                                        "adaptive(beta=0.1,alpha=0.3)"));
}

// ---------------------------------------------------------------------
// Registry completeness
// ---------------------------------------------------------------------

TEST(RegistryCompletenessTest, ExactComponentLists) {
  std::set<std::string> policies;
  for (const ComponentInfo* info :
       registry().components(ComponentKind::kPolicy)) {
    policies.insert(info->name);
  }
  EXPECT_EQ(policies, (std::set<std::string>{
                          "adaptive", "conventional", "drwp",
                          "full_replication", "offline_plan", "randomized",
                          "single_copy_chase", "static_single", "wang2021",
                          "weighted"}));

  std::set<std::string> predictors;
  for (const ComponentInfo* info :
       registry().components(ComponentKind::kPredictor)) {
    predictors.insert(info->name);
  }
  EXPECT_EQ(predictors, (std::set<std::string>{
                            "adversarial", "ensemble", "fixed", "history",
                            "last_gap", "noisy", "oracle"}));
}

/// Every concrete ReplicationPolicy in src/ is reachable from the
/// registry, with the expected dynamic type (a newly added policy class
/// must be registered — and added here).
TEST(RegistryCompletenessTest, EveryConcretePolicyClassIsRegistered) {
  const Trace trace = small_trace();
  const BuildContext ctx = offline_context(trace);
  const auto build = [&](const std::string& spec) {
    return registry().build_policy(spec, ctx);
  };
  EXPECT_NE(dynamic_cast<DrwpPolicy*>(build("drwp").get()), nullptr);
  EXPECT_NE(dynamic_cast<ConventionalPolicy*>(build("conventional").get()),
            nullptr);
  EXPECT_NE(dynamic_cast<AdaptiveDrwpPolicy*>(
                build("adaptive(alpha=0.4,beta=0.2,warmup=5)").get()),
            nullptr);
  EXPECT_NE(
      dynamic_cast<RandomizedDrwpPolicy*>(build("randomized").get()),
      nullptr);
  EXPECT_NE(dynamic_cast<WeightedDrwpPolicy*>(build("weighted").get()),
            nullptr);
  EXPECT_NE(dynamic_cast<Wang2021Policy*>(build("wang2021").get()),
            nullptr);
  EXPECT_NE(
      dynamic_cast<FullReplicationPolicy*>(build("full_replication").get()),
      nullptr);
  EXPECT_NE(dynamic_cast<StaticPolicy*>(build("static_single").get()),
            nullptr);
  EXPECT_NE(
      dynamic_cast<SingleCopyChasePolicy*>(build("single_copy_chase").get()),
      nullptr);
  EXPECT_NE(dynamic_cast<PlannedPolicy*>(build("offline_plan").get()),
            nullptr);
}

/// And likewise for every concrete Predictor.
TEST(RegistryCompletenessTest, EveryConcretePredictorClassIsRegistered) {
  const Trace trace = small_trace();
  const BuildContext ctx = offline_context(trace);
  const auto build = [&](const std::string& spec) {
    return registry().build_predictor(spec, ctx);
  };
  EXPECT_NE(dynamic_cast<LastGapPredictor*>(build("last_gap").get()),
            nullptr);
  EXPECT_NE(dynamic_cast<HistoryPredictor*>(build("history").get()),
            nullptr);
  EXPECT_NE(dynamic_cast<EnsemblePredictor*>(
                build("ensemble(last_gap,history)").get()),
            nullptr);
  EXPECT_NE(dynamic_cast<FixedPredictor*>(build("fixed").get()), nullptr);
  EXPECT_NE(dynamic_cast<OraclePredictor*>(build("oracle").get()), nullptr);
  EXPECT_NE(
      dynamic_cast<AdversarialPredictor*>(build("adversarial").get()),
      nullptr);
  EXPECT_NE(
      dynamic_cast<AccuracyPredictor*>(build("noisy(accuracy=0.7)").get()),
      nullptr);
}

/// Every registered component's example spec builds successfully in the
/// offline context (the trace satisfies the clairvoyant ones). Catches
/// a factory that compiles but throws at construction.
TEST(RegistryCompletenessTest, EveryExampleSpecConstructs) {
  const Trace trace = small_trace();
  const BuildContext ctx = offline_context(trace);
  for (const ComponentInfo* info :
       registry().components(ComponentKind::kPolicy)) {
    SCOPED_TRACE(info->example);
    const PolicyPtr policy = registry().build_policy(info->example, ctx);
    ASSERT_NE(policy, nullptr);
    EXPECT_FALSE(policy->name().empty());
  }
  for (const ComponentInfo* info :
       registry().components(ComponentKind::kPredictor)) {
    SCOPED_TRACE(info->example);
    const PredictorPtr predictor =
        registry().build_predictor(info->example, ctx);
    ASSERT_NE(predictor, nullptr);
    EXPECT_FALSE(predictor->name().empty());
  }
}

}  // namespace
}  // namespace repl
