// Leveled, component-scoped structured logging for every process in a
// serve (engine, net front-end, cluster coordinator/workers).
//
// One process-wide Logger renders either human text lines
//
//   2026-08-08T12:00:00.123Z INFO  cluster worker respawned partition=2
//
// or JSON lines ({"ts":...,"level":"info","component":"cluster",
// "msg":...,"partition":"2"}) to stderr — never stdout, which carries
// the AGGREGATE/READY contract lines drivers diff. Levels are settable
// per component ("net=debug") on top of a default, from one spec string
// (the `--log-level` flag): "info,net=debug,cluster=trace".
//
// REPL_LOG_* macros evaluate their stream expression only when the
// (level, component) pair is enabled, so a disabled debug line costs
// one mutex-free atomic load plus a map lookup only when components
// have overrides. Logging is observability, not control flow: nothing
// in the serve path may branch on it, and aggregates must be
// bit-identical with logging on or off.
#pragma once

#include <functional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace repl::obs {

enum class LogLevel : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  kOff = 5,
};

const char* log_level_name(LogLevel level);

/// Parses "trace"/"debug"/"info"/"warn"/"error"/"off" (case-insensitive).
/// Throws std::invalid_argument on anything else.
LogLevel parse_log_level(const std::string& name);

/// One structured key/value attached to a log line (rendered as
/// `key=value` in text mode, `"key":"value"` in JSON mode).
using LogFields = std::vector<std::pair<std::string, std::string>>;

class Logger {
 public:
  /// Process-wide logger. Defaults: level info, text mode, stderr sink.
  static Logger& global();

  /// Applies a `--log-level` spec: a comma-separated list of either a
  /// bare level (the new default) or `component=level` overrides, e.g.
  /// "warn,net=debug". Throws std::invalid_argument on a malformed
  /// spec, naming the offending element.
  void configure(const std::string& spec);

  void set_default_level(LogLevel level);
  void set_component_level(const std::string& component, LogLevel level);
  /// JSON-lines mode instead of human text.
  void set_json(bool json);
  bool json() const;
  /// Redirects rendered lines ("" sink = back to stderr). The line does
  /// not include a trailing newline. Used by tests and embedding hosts.
  void set_sink(std::function<void(const std::string& line)> sink);
  /// Back to defaults: info / text / stderr, no component overrides.
  void reset();

  bool enabled(LogLevel level, const char* component) const;

  /// Renders and emits one line. Prefer the REPL_LOG_* macros, which
  /// skip message construction when the line is disabled.
  void log(LogLevel level, const char* component, const std::string& message,
           const LogFields& fields = {});

 private:
  Logger() = default;
};

}  // namespace repl::obs

/// Stream-style logging: REPL_LOG_INFO("cluster", "respawned p" << id).
/// The stream expression is evaluated only when the line is enabled.
#define REPL_LOG_AT(level_, component_, stream_)                          \
  do {                                                                    \
    ::repl::obs::Logger& repl_log_logger_ = ::repl::obs::Logger::global(); \
    if (repl_log_logger_.enabled((level_), (component_))) {               \
      std::ostringstream repl_log_os_;                                    \
      repl_log_os_ << stream_;                                            \
      repl_log_logger_.log((level_), (component_), repl_log_os_.str());   \
    }                                                                     \
  } while (0)

#define REPL_LOG_TRACE(component_, stream_) \
  REPL_LOG_AT(::repl::obs::LogLevel::kTrace, component_, stream_)
#define REPL_LOG_DEBUG(component_, stream_) \
  REPL_LOG_AT(::repl::obs::LogLevel::kDebug, component_, stream_)
#define REPL_LOG_INFO(component_, stream_) \
  REPL_LOG_AT(::repl::obs::LogLevel::kInfo, component_, stream_)
#define REPL_LOG_WARN(component_, stream_) \
  REPL_LOG_AT(::repl::obs::LogLevel::kWarn, component_, stream_)
#define REPL_LOG_ERROR(component_, stream_) \
  REPL_LOG_AT(::repl::obs::LogLevel::kError, component_, stream_)
