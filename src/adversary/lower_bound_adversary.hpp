// The Section-9 adaptive adversary: drives any deterministic replication
// policy on a two-server system with always-correct "beyond λ"
// predictions and generates a request sequence on which the policy's cost
// is at least ~3/2 of the offline optimum. This realizes the paper's
// lower bound of 3/2 on the consistency of any deterministic
// learning-augmented algorithm.
//
// Generation rules, after request r_{i-1} (s is the other server, r_k the
// last request at s, ε a small constant, t' = max{t_{i-1}+ε, t_k+λ+ε}):
//   * if s holds no copy at t'           → request at s at t'
//       (Type-K1a when t' = t_k+λ+ε, else Type-K1b);
//   * if s drops its copy at t* in (t', t_{i-1}+λ)
//                                        → request at s at t*+ε (Type-K1c);
//   * if s keeps its copy throughout     → request at s[r_{i-1}] at
//                                          t_{i-1}+λ+ε (Type-K2).
//
// The adversary observes the policy's future copy-holding behaviour by
// advancing *clones* of it — policies are required to be clone()-able and
// deterministic. All generated same-server gaps exceed λ, so the fixed
// "beyond" predictions are genuinely correct.
#pragma once

#include <vector>

#include "core/policy.hpp"
#include "trace/trace.hpp"

namespace repl {

enum class AdversaryKind { kK1a, kK1b, kK1c, kK2 };

struct AdversaryResult {
  Trace trace;
  std::vector<AdversaryKind> kinds;  // aligned with trace requests

  std::size_t count(AdversaryKind kind) const;
};

class LowerBoundAdversary {
 public:
  struct Options {
    double lambda = 1.0;
    double epsilon = 1e-4;  // the paper's ε; must be < λ
    int num_requests = 200;
  };

  explicit LowerBoundAdversary(Options options);

  /// Plays the game against a fresh clone of `prototype` and returns the
  /// generated trace. Re-running the policy on the trace (with
  /// always-"beyond" predictions) reproduces the adversarial behaviour.
  AdversaryResult generate(const ReplicationPolicy& prototype) const;

  SystemConfig config() const;

 private:
  Options options_;
};

}  // namespace repl
