#include "offline/planned_policy.hpp"

#include <bit>
#include <cmath>

#include "util/check.hpp"

namespace repl {

PlannedPolicy::PlannedPolicy(const Trace& trace, OfflinePlan plan)
    : trace_(trace), plan_(std::move(plan)) {
  REPL_REQUIRE_MSG(plan_.states.size() == trace_.size(),
                   "plan does not match the trace");
}

int PlannedPolicy::bit_of(int server) const {
  REPL_CHECK(server >= 0 &&
             server < static_cast<int>(server_to_bit_.size()));
  return server_to_bit_[static_cast<std::size_t>(server)];
}

void PlannedPolicy::reset(const SystemConfig& config, const Prediction&,
                          EventSink& sink) {
  config.validate();
  REPL_REQUIRE(config.num_servers == trace_.num_servers());
  config_ = config;
  server_to_bit_.assign(static_cast<std::size_t>(config.num_servers), -1);
  for (std::size_t b = 0; b < plan_.active_servers.size(); ++b) {
    server_to_bit_[static_cast<std::size_t>(plan_.active_servers[b])] =
        static_cast<int>(b);
  }
  const int init_bit = bit_of(config.initial_server);
  REPL_REQUIRE_MSG(init_bit >= 0,
                   "plan does not cover the initial server");
  holders_ = std::uint32_t{1} << init_bit;
  next_request_ = 0;
  now_ = 0.0;
  sink.on_create(config.initial_server, 0.0);
  // Copies the plan buys at time 0 (alongside the dummy request).
  if (!plan_.states.empty()) {
    int ignored = 0;
    reconcile(plan_.states[0], /*requester=*/-1, 0.0, sink, &ignored);
  }
}

void PlannedPolicy::advance_to(double time, EventSink&) {
  REPL_CHECK(time >= now_);
  if (std::isfinite(time)) now_ = time;
}

void PlannedPolicy::reconcile(std::uint32_t target, int requester,
                              double time, EventSink& sink,
                              int* extra_transfers) {
  REPL_REQUIRE_MSG(target != 0, "plan reaches an empty holder set");
  const std::uint32_t requester_mask =
      requester >= 0 ? (std::uint32_t{1} << bit_of(requester)) : 0;
  // Creates first (the at-least-one-copy requirement must hold at every
  // intermediate event), sourcing from any current holder.
  std::uint32_t to_create = target & ~holders_;
  while (to_create) {
    const int bit = std::countr_zero(to_create);
    to_create &= to_create - 1;
    const std::uint32_t mask = std::uint32_t{1} << bit;
    const int server = server_of_bit(bit);
    if (!(mask & requester_mask)) {
      // A replication transfer beyond the serving one.
      const int src_bit = std::countr_zero(holders_);
      sink.on_transfer(server_of_bit(src_bit), server, time);
      ++*extra_transfers;
    }
    sink.on_create(server, time);
    holders_ |= mask;
  }
  std::uint32_t to_drop = holders_ & ~target;
  while (to_drop) {
    const int bit = std::countr_zero(to_drop);
    to_drop &= to_drop - 1;
    holders_ &= ~(std::uint32_t{1} << bit);
    REPL_CHECK(holders_ != 0);
    sink.on_drop(server_of_bit(bit), time);
  }
}

ServeAction PlannedPolicy::on_request(int server, double time,
                                      const Prediction&, EventSink& sink) {
  REPL_CHECK_MSG(next_request_ < trace_.size(),
                 "more requests than the plan covers");
  REPL_CHECK_MSG(trace_[next_request_].server == server &&
                     trace_[next_request_].time == time,
                 "request stream diverges from the planned trace at index "
                     << next_request_);
  const std::uint32_t state = plan_.states[next_request_];
  REPL_CHECK_MSG(state == holders_,
                 "holder set diverged from the plan");
  const int abit = bit_of(server);
  REPL_REQUIRE(abit >= 0);
  const std::uint32_t amask = std::uint32_t{1} << abit;

  ServeAction action;
  if (holders_ & amask) {
    action.local = true;
    action.source = server;
  } else {
    action.local = false;
    const int src_bit = std::countr_zero(holders_);
    action.source = server_of_bit(src_bit);
    sink.on_transfer(action.source, server, time);
  }

  const std::uint32_t target = (next_request_ + 1 < trace_.size())
                                   ? plan_.states[next_request_ + 1]
                                   : plan_.final_state;
  // The requester's copy (if the plan keeps one) rides along with the
  // serve; creating it emits no extra transfer.
  if ((target & amask) && !(holders_ & amask)) {
    sink.on_create(server, time);
    holders_ |= amask;
  }
  reconcile(target, server, time, sink, &action.extra_transfers);
  ++next_request_;
  now_ = time;
  return action;
}

bool PlannedPolicy::holds(int server) const {
  if (server < 0 || server >= static_cast<int>(server_to_bit_.size())) {
    return false;
  }
  const int bit = server_to_bit_[static_cast<std::size_t>(server)];
  if (bit < 0) return false;
  return holders_ & (std::uint32_t{1} << bit);
}

int PlannedPolicy::copy_count() const {
  return std::popcount(holders_);
}

std::unique_ptr<ReplicationPolicy> PlannedPolicy::clone() const {
  return std::make_unique<PlannedPolicy>(*this);
}

}  // namespace repl
