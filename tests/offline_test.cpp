// Offline optimum tests: the DP against closed forms, the reference
// solver, the OPTL lower bound, policy upper bounds, and plan
// reconstruction.
#include <bit>

#include <gtest/gtest.h>

#include "baselines/naive.hpp"
#include "baselines/wang2021.hpp"
#include "core/drwp.hpp"
#include "core/simulator.hpp"
#include "offline/opt_dp.hpp"
#include "offline/opt_lower_bound.hpp"
#include "offline/opt_reference.hpp"
#include "predictor/fixed.hpp"
#include "predictor/noisy.hpp"
#include "test_util.hpp"
#include "trace/paper_instances.hpp"

namespace repl {
namespace {

using testing::make_config;

TEST(OptDp, EmptyTraceIsFree) {
  const SystemConfig config = make_config(3, 5.0);
  EXPECT_DOUBLE_EQ(optimal_offline_cost(config, Trace(3, {})), 0.0);
}

TEST(OptDp, SingleServerKeepsTheCopy) {
  // All requests at the initial server: the only feasible (and optimal)
  // strategy stores the copy throughout, costing t_m.
  const SystemConfig config = make_config(1, 5.0);
  const Trace trace(1, {{2.0, 0}, {30.0, 0}, {31.0, 0}});
  EXPECT_DOUBLE_EQ(optimal_offline_cost(config, trace), 31.0);
}

TEST(OptDp, RemoteSingletonPrefersTransferWhenGapLarge) {
  // One remote request, far in the future: serving by transfer at cost λ
  // plus mandatory coverage storage t1 beats holding two copies.
  const SystemConfig config = make_config(2, 5.0);
  const Trace trace(2, {{100.0, 1}});
  EXPECT_DOUBLE_EQ(optimal_offline_cost(config, trace), 100.0 + 5.0);
}

TEST(OptDp, Figure5ClosedForm) {
  const double alpha = 0.5, lambda = 10.0, eps = 0.5;
  for (int m : {1, 2, 5, 10, 25}) {
    const SystemConfig config = make_config(2, lambda);
    const Trace trace = make_figure5_trace(alpha, lambda, m, eps);
    EXPECT_NEAR(optimal_offline_cost(config, trace),
                figure5_optimal_cost(alpha, lambda, m, eps), 1e-9)
        << "m=" << m;
  }
}

TEST(OptDp, Figure6ClosedForm) {
  const double lambda = 10.0, eps = 0.25;
  const SystemConfig config = make_config(2, lambda);
  const Trace trace = make_figure6_trace(lambda, eps, 1);
  EXPECT_NEAR(optimal_offline_cost(config, trace),
              figure6_single_cycle_optimal_cost(lambda, eps), 1e-9);
}

TEST(OptDp, Figure9ClosedForm) {
  const double lambda = 10.0, eps = 0.05;
  for (int m : {2, 3, 6, 12}) {
    const SystemConfig config = make_config(2, lambda);
    const Trace trace = make_figure9_trace(lambda, eps, m);
    EXPECT_NEAR(optimal_offline_cost(config, trace),
                figure9_optimal_cost(lambda, eps, m), 1e-9)
        << "m=" << m;
  }
}

TEST(OptDp, MatchesReferenceOnUniformRandomTraces) {
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    const Trace trace = testing::random_trace(4, 0.08, 400.0, seed);
    if (trace.empty()) continue;
    for (double lambda : {2.0, 10.0, 60.0}) {
      const SystemConfig config = make_config(4, lambda);
      EXPECT_NEAR(optimal_offline_cost(config, trace),
                  reference_offline_cost(config, trace), 1e-9)
          << "seed=" << seed << " lambda=" << lambda;
    }
  }
}

TEST(OptDp, MatchesReferenceOnWeightedRandomTraces) {
  for (std::uint64_t seed = 100; seed < 110; ++seed) {
    const Trace trace = testing::random_trace(3, 0.06, 300.0, seed);
    if (trace.empty()) continue;
    SystemConfig config = make_config(3, 8.0);
    config.storage_rates = {1.0, 0.25, 4.0};
    EXPECT_NEAR(optimal_offline_cost(config, trace),
                reference_offline_cost(config, trace), 1e-9)
        << "seed=" << seed;
  }
}

TEST(OptDp, WeightedParkingAtCheapIdleServerHelps) {
  // Two expensive requesters ping-pong with long gaps; a third, very
  // cheap server never requests. The optimum transfers the object to the
  // cheap server for the long quiet stretches ("parking"), which only a
  // state space including the idle server can represent.
  SystemConfig config = make_config(3, 1.0);
  config.storage_rates = {10.0, 10.0, 0.01};
  const Trace trace(3, {{100.0, 1}, {200.0, 0}, {300.0, 1}});
  const double opt = optimal_offline_cost(config, trace);
  // Parking plan: park at s2 (λ at t=0 buy), serve each request by
  // transfer: storage ≈ 300*0.01 = 3 plus 4 transfers = 4 -> ~7.
  EXPECT_LT(opt, 10.0);
  EXPECT_NEAR(opt, reference_offline_cost(config, trace), 1e-9);
}

TEST(OptDp, AtMostPolicyCosts) {
  // The DP is a true optimum: no online policy can beat it.
  FixedPredictor beyond = always_beyond_predictor();
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const Trace trace = testing::random_trace(5, 0.05, 2000.0, seed + 50);
    if (trace.empty()) continue;
    for (double lambda : {5.0, 40.0}) {
      const SystemConfig config = make_config(5, lambda);
      const double opt = optimal_offline_cost(config, trace);
      DrwpPolicy drwp(0.5);
      ConventionalPolicy conventional;
      FullReplicationPolicy full;
      StaticPolicy pinned;
      SingleCopyChasePolicy chase;
      for (ReplicationPolicy* policy :
           std::initializer_list<ReplicationPolicy*>{
               &drwp, &conventional, &full, &pinned, &chase}) {
        SimulationOptions lean;
        lean.record_events = false;
        const double cost = Simulator(config, lean)
                                .run(*policy, trace, beyond)
                                .total_cost();
        EXPECT_GE(cost, opt - 1e-9)
            << policy->name() << " seed=" << seed << " lambda=" << lambda;
      }
    }
  }
}

TEST(OptDp, AtLeastLowerBound) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const Trace trace = testing::random_trace(5, 0.05, 3000.0, seed + 70);
    if (trace.empty()) continue;
    for (double lambda : {3.0, 25.0, 200.0}) {
      const SystemConfig config = make_config(5, lambda);
      EXPECT_GE(optimal_offline_cost(config, trace),
                opt_lower_bound(config, trace) - 1e-9)
          << "seed=" << seed << " lambda=" << lambda;
    }
  }
}

TEST(OptLowerBound, ClosedFormOnCraftedTrace) {
  // λ=4. Requests: (3, s0): gap_same=3 <= 4 -> +3; global gap 3 -> no
  // excess. (5, s1): first at s1 -> +4; global 2 -> none.
  // (20, s0): gap_same=17 > 4 -> +4; global 15 -> +11.
  const SystemConfig config = make_config(2, 4.0);
  const Trace trace(2, {{3.0, 0}, {5.0, 1}, {20.0, 0}});
  EXPECT_DOUBLE_EQ(opt_lower_bound(config, trace), 3 + 4 + 4 + 11);
}

TEST(OptLowerBound, RejectsWeightedRates) {
  SystemConfig config = make_config(2, 4.0);
  config.storage_rates = {1.0, 2.0};
  const Trace trace(2, {{1.0, 0}});
  EXPECT_THROW(opt_lower_bound(config, trace), std::invalid_argument);
}

TEST(OptDp, PlanMatchesSolveAndEvaluates) {
  for (std::uint64_t seed = 200; seed < 206; ++seed) {
    const Trace trace = testing::random_trace(4, 0.06, 500.0, seed);
    if (trace.empty()) continue;
    const SystemConfig config = make_config(4, 10.0);
    const OptimalDpSolver solver(config);
    const double cost = solver.solve(trace);
    const OfflinePlan plan = solver.solve_with_plan(trace);
    EXPECT_NEAR(plan.cost, cost, 1e-9) << "seed=" << seed;
    EXPECT_NEAR(evaluate_plan(config, trace, plan), cost, 1e-9)
        << "seed=" << seed;
  }
}

TEST(OptDp, PlanOnFigure5KeepsBothCopies) {
  const double alpha = 0.5, lambda = 10.0, eps = 0.5;
  const SystemConfig config = make_config(2, lambda);
  const Trace trace = make_figure5_trace(alpha, lambda, 9, eps);
  const OfflinePlan plan = OptimalDpSolver(config).solve_with_plan(trace);
  // After the first request both servers hold copies (serving each
  // request locally is strictly cheaper than a transfer here), except
  // during the final gap where only the last requester's copy is needed.
  for (std::size_t i = 2; i + 1 < plan.states.size(); ++i) {
    EXPECT_EQ(std::popcount(plan.states[i]), 2) << "gap before request " << i;
  }
  EXPECT_EQ(std::popcount(plan.states[plan.states.size() - 1]), 1);
}

TEST(OptDp, RespectsActiveServerCap) {
  OptimalDpSolver::Options options;
  options.max_active_servers = 2;
  const SystemConfig config = make_config(4, 1.0);
  const OptimalDpSolver solver(config, options);
  const Trace trace(4, {{1.0, 1}, {2.0, 2}, {3.0, 3}});
  EXPECT_THROW(solver.solve(trace), std::invalid_argument);
}

TEST(OptDp, ManyPhysicalServersFewActive) {
  // 1000 physical servers, 3 active: the DP must only pay for 3 bits.
  const SystemConfig config = make_config(1000, 5.0);
  const Trace trace(1000, {{1.0, 500}, {2.0, 999}, {8.0, 500}});
  const double opt = optimal_offline_cost(config, trace);
  EXPECT_GT(opt, 0.0);
  EXPECT_NEAR(opt, reference_offline_cost(config, trace), 1e-9);
}

TEST(Wang2021CounterexampleCost, MatchesFigure9Optimal) {
  // Independent cross-check of the Figure-9 closed form against the
  // reference solver on a mid-sized instance.
  const double lambda = 7.0, eps = 0.125;
  const int m = 8;
  const SystemConfig config = make_config(2, lambda);
  const Trace trace = make_figure9_trace(lambda, eps, m);
  EXPECT_NEAR(reference_offline_cost(config, trace),
              figure9_optimal_cost(lambda, eps, m), 1e-9);
}

}  // namespace
}  // namespace repl
