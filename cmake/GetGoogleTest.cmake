# Provides GTest::gtest and GTest::gtest_main.
#
# Resolution order keeps offline builds working:
#   1. an installed GTest package (Debian's libgtest-dev ships one);
#   2. the distro source tree under /usr/src/googletest;
#   3. FetchContent from GitHub (needs network) as the last resort.
find_package(GTest QUIET)

if(TARGET GTest::gtest_main)
  message(STATUS "repl: using installed GTest package")
elseif(EXISTS /usr/src/googletest/CMakeLists.txt)
  message(STATUS "repl: building GTest from /usr/src/googletest")
  set(INSTALL_GTEST OFF CACHE BOOL "" FORCE)
  add_subdirectory(/usr/src/googletest
    ${CMAKE_BINARY_DIR}/_deps/googletest-build EXCLUDE_FROM_ALL)
  if(NOT TARGET GTest::gtest_main)
    add_library(GTest::gtest ALIAS gtest)
    add_library(GTest::gtest_main ALIAS gtest_main)
  endif()
else()
  message(STATUS "repl: fetching GTest via FetchContent")
  include(FetchContent)
  FetchContent_Declare(googletest
    URL https://github.com/google/googletest/archive/refs/tags/v1.14.0.tar.gz)
  set(INSTALL_GTEST OFF CACHE BOOL "" FORCE)
  FetchContent_MakeAvailable(googletest)
endif()

include(GoogleTest)
