// Tests for the additional predictors (ensemble, last-gap) and the trace
// transformation utilities, including the scale-invariance property of
// competitive ratios.
#include <memory>

#include <gtest/gtest.h>

#include "analysis/ratio.hpp"
#include "core/drwp.hpp"
#include "offline/opt_dp.hpp"
#include "predictor/ensemble.hpp"
#include "predictor/fixed.hpp"
#include "predictor/last_gap.hpp"
#include "predictor/noisy.hpp"
#include "predictor/oracle.hpp"
#include "test_util.hpp"
#include "trace/trace_ops.hpp"

namespace repl {
namespace {

using testing::make_config;

double measure_accuracy(const Trace& trace, Predictor& predictor,
                        double lambda) {
  predictor.reset();
  std::size_t correct = 0;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    PredictionQuery query{static_cast<long>(i), trace[i].server,
                          trace[i].time, lambda};
    correct += predictor.predict(query).within_lambda ==
               next_gap_within_lambda(trace, i, lambda);
  }
  return static_cast<double>(correct) / static_cast<double>(trace.size());
}

TEST(Ensemble, UnanimousExpertsPassThrough) {
  const Trace trace = testing::random_trace(4, 0.05, 2000.0, 301);
  std::vector<std::shared_ptr<Predictor>> experts;
  experts.push_back(std::make_shared<OraclePredictor>(trace));
  experts.push_back(std::make_shared<OraclePredictor>(trace));
  EnsemblePredictor ensemble(std::move(experts));
  EXPECT_DOUBLE_EQ(measure_accuracy(trace, ensemble, 20.0), 1.0);
}

TEST(Ensemble, MajorityOverrulesMinority) {
  const Trace trace = testing::random_trace(4, 0.05, 2000.0, 303);
  std::vector<std::shared_ptr<Predictor>> experts;
  experts.push_back(std::make_shared<OraclePredictor>(trace));
  experts.push_back(std::make_shared<OraclePredictor>(trace));
  experts.push_back(std::make_shared<AdversarialPredictor>(trace));
  EnsemblePredictor::Config config;
  config.penalty = 1.0;  // plain vote
  EnsemblePredictor ensemble(
      std::vector<std::shared_ptr<Predictor>>(experts), config);
  EXPECT_DOUBLE_EQ(measure_accuracy(trace, ensemble, 20.0), 1.0);
}

TEST(Ensemble, AdaptationDownWeightsBadExperts) {
  // One oracle vs two adversarial experts: a plain vote loses, but the
  // multiplicative update learns to trust the oracle.
  const Trace trace = testing::random_trace(4, 0.08, 30000.0, 305);
  ASSERT_GT(trace.size(), 500u);
  auto make_experts = [&] {
    std::vector<std::shared_ptr<Predictor>> experts;
    experts.push_back(std::make_shared<OraclePredictor>(trace));
    experts.push_back(std::make_shared<AdversarialPredictor>(trace));
    experts.push_back(std::make_shared<AdversarialPredictor>(trace));
    return experts;
  };
  EnsemblePredictor::Config plain;
  plain.penalty = 1.0;
  EnsemblePredictor voting(make_experts(), plain);
  EXPECT_LT(measure_accuracy(trace, voting, 20.0), 0.1);

  EnsemblePredictor::Config adapting;
  adapting.penalty = 0.5;
  EnsemblePredictor learner(make_experts(), adapting);
  EXPECT_GT(measure_accuracy(trace, learner, 20.0), 0.8);
  // The oracle ends with the dominant weight.
  EXPECT_DOUBLE_EQ(learner.weights()[0], 1.0);
  EXPECT_LT(learner.weights()[1], 0.01);
}

TEST(Ensemble, RejectsBadConfig) {
  const Trace trace(1, {{1.0, 0}});
  std::vector<std::shared_ptr<Predictor>> experts;
  EXPECT_THROW(EnsemblePredictor{std::move(experts)},
               std::invalid_argument);
  std::vector<std::shared_ptr<Predictor>> one;
  one.push_back(std::make_shared<OraclePredictor>(trace));
  EnsemblePredictor::Config bad;
  bad.penalty = 0.0;
  EXPECT_THROW(EnsemblePredictor(std::move(one), bad),
               std::invalid_argument);
}

TEST(LastGap, PredictsPreviousClass) {
  LastGapPredictor predictor(1);
  const double lambda = 10.0;
  PredictionQuery q{0, 0, 1.0, lambda};
  EXPECT_FALSE(predictor.predict(q).within_lambda);  // default beyond
  q.time = 4.0;                                      // gap 3 <= 10
  EXPECT_TRUE(predictor.predict(q).within_lambda);
  q.time = 100.0;  // gap 96 > 10
  EXPECT_FALSE(predictor.predict(q).within_lambda);
  q.time = 105.0;  // gap 5 <= 10
  EXPECT_TRUE(predictor.predict(q).within_lambda);
}

TEST(LastGap, AccurateOnStronglyAutocorrelatedTraces) {
  // Periodic per-server gaps: after the first observation every forecast
  // is correct except the final one per server (no next request).
  const Trace trace = generate_periodic_trace(
      2, /*periods=*/{3.0, 40.0}, /*offsets=*/{1.0, 2.0},
      /*horizon=*/400.0);
  LastGapPredictor predictor(2);
  EXPECT_GT(measure_accuracy(trace, predictor, 10.0), 0.95);
}

TEST(TraceOps, SliceShiftsAndFilters) {
  const Trace trace(2, {{1.0, 0}, {5.0, 1}, {9.0, 0}, {12.0, 1}});
  const Trace sliced = slice_trace(trace, 4.0, 10.0);
  ASSERT_EQ(sliced.size(), 2u);
  EXPECT_DOUBLE_EQ(sliced[0].time, 1.0);  // 5 - 4
  EXPECT_EQ(sliced[0].server, 1);
  EXPECT_DOUBLE_EQ(sliced[1].time, 5.0);  // 9 - 4
}

TEST(TraceOps, MergeInterleavesByTime) {
  const Trace a(2, {{1.0, 0}, {5.0, 0}});
  const Trace b(2, {{2.0, 1}, {5.0, 1}});
  const Trace merged = merge_traces(a, b);
  ASSERT_EQ(merged.size(), 4u);
  EXPECT_EQ(merged[0].server, 0);
  EXPECT_EQ(merged[1].server, 1);
  // The 5.0 tie was nudged, preserving validity.
  EXPECT_GT(merged[3].time, merged[2].time);
  EXPECT_THROW(merge_traces(a, Trace(3, {})), std::invalid_argument);
}

TEST(TraceOps, RemapServers) {
  const Trace trace(3, {{1.0, 0}, {2.0, 2}});
  const Trace remapped = remap_servers(trace, {1, 0, 0}, 2);
  EXPECT_EQ(remapped[0].server, 1);
  EXPECT_EQ(remapped[1].server, 0);
  EXPECT_THROW(remap_servers(trace, {5, 0, 0}, 2), std::invalid_argument);
}

TEST(TraceOps, ThinKeepsEveryKth) {
  const Trace trace(1, {{1.0, 0}, {2.0, 0}, {3.0, 0}, {4.0, 0}, {5.0, 0}});
  const Trace thinned = thin_trace(trace, 2);
  ASSERT_EQ(thinned.size(), 3u);
  EXPECT_DOUBLE_EQ(thinned[1].time, 3.0);
}

TEST(TraceOps, TimeScaleInvarianceOfRatios) {
  // Scaling all times and λ by the same factor scales every cost
  // linearly, leaving competitive ratios exactly unchanged — a strong
  // consistency check across trace, policy, simulator and DP.
  const Trace trace = testing::random_trace(4, 0.05, 2000.0, 307);
  const double factor = 7.5;
  const Trace scaled = scale_time(trace, factor);
  const SystemConfig config = make_config(4, 20.0);
  SystemConfig scaled_config = make_config(4, 20.0 * factor);
  FixedPredictor beyond = always_beyond_predictor();
  DrwpPolicy policy_a(0.35), policy_b(0.35);
  const RatioReport original =
      evaluate_policy(config, policy_a, trace, beyond);
  const RatioReport rescaled =
      evaluate_policy(scaled_config, policy_b, scaled, beyond);
  EXPECT_NEAR(original.ratio, rescaled.ratio, 1e-9);
  EXPECT_NEAR(rescaled.online_cost, original.online_cost * factor,
              1e-6 * original.online_cost);
}

}  // namespace
}  // namespace repl
