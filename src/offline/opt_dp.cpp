#include "offline/opt_dp.hpp"

#include <algorithm>
#include <bit>
#include <limits>

#include "util/check.hpp"

namespace repl {

namespace {

constexpr double kInfCost = std::numeric_limits<double>::infinity();

struct ActiveMap {
  std::vector<int> bit_to_server;
  std::vector<int> server_to_bit;  // -1 for servers with no requests
  int init_bit = 0;

  int bits() const { return static_cast<int>(bit_to_server.size()); }
};

bool uniform_rates_impl(const SystemConfig& config) {
  if (config.storage_rates.empty()) return true;
  for (double r : config.storage_rates) {
    if (r != config.storage_rates.front()) return false;
  }
  return true;
}

ActiveMap build_active_map(const SystemConfig& config, const Trace& trace) {
  ActiveMap map;
  map.server_to_bit.assign(static_cast<std::size_t>(config.num_servers), -1);
  auto add = [&map](int server) {
    auto& bit = map.server_to_bit[static_cast<std::size_t>(server)];
    if (bit < 0) {
      bit = static_cast<int>(map.bit_to_server.size());
      map.bit_to_server.push_back(server);
    }
  };
  add(config.initial_server);
  for (const Request& r : trace.requests()) add(r.server);
  // Under distinct storage rates the optimum may "park" the object at the
  // cheapest server even if it never requests; include one such server in
  // the state universe. (Under uniform rates parking at a non-requester
  // never beats extending an existing copy, so no extra bit is needed.)
  if (!uniform_rates_impl(config)) {
    int cheapest = 0;
    for (int s = 1; s < config.num_servers; ++s) {
      if (config.storage_rate(s) < config.storage_rate(cheapest)) {
        cheapest = s;
      }
    }
    add(cheapest);
  }
  map.init_bit = map.server_to_bit[
      static_cast<std::size_t>(config.initial_server)];
  return map;
}

/// Summed storage rate per holder set.
std::vector<double> build_weights(const SystemConfig& config,
                                  const ActiveMap& map) {
  const std::size_t full = std::size_t{1} << map.bits();
  std::vector<double> weights(full, 0.0);
  for (std::size_t s = 1; s < full; ++s) {
    const int low = std::countr_zero(s);
    weights[s] = weights[s & (s - 1)] +
                 config.storage_rate(map.bit_to_server[
                     static_cast<std::size_t>(low)]);
  }
  return weights;
}

bool uniform_rates(const SystemConfig& config) {
  return uniform_rates_impl(config);
}

/// Event sequence: the dummy request r0 (time 0, initial server) followed
/// by the trace. Buying copies at time 0 is thereby representable.
struct Event {
  double gap;  // time since the previous event
  int bit;     // requesting server's bit index
};

std::vector<Event> build_events(const ActiveMap& map, const Trace& trace) {
  std::vector<Event> events;
  events.reserve(trace.size() + 1);
  events.push_back(Event{0.0, map.init_bit});
  double prev = 0.0;
  for (const Request& r : trace.requests()) {
    events.push_back(Event{
        r.time - prev,
        map.server_to_bit[static_cast<std::size_t>(r.server)]});
    prev = r.time;
  }
  return events;
}

}  // namespace

OptimalDpSolver::OptimalDpSolver(SystemConfig config, Options options)
    : config_(std::move(config)), options_(options) {
  config_.validate();
  REPL_REQUIRE(options_.max_active_servers >= 1);
}

double OptimalDpSolver::solve(const Trace& trace) const {
  if (trace.empty()) return 0.0;
  REPL_REQUIRE(trace.num_servers() == config_.num_servers);
  const ActiveMap map = build_active_map(config_, trace);
  const int k = map.bits();
  REPL_REQUIRE_MSG(k <= options_.max_active_servers,
                   "trace has " << k << " active servers; DP is Θ(m·2^k·k)"
                                << " and capped at "
                                << options_.max_active_servers);
  const std::size_t full = std::size_t{1} << k;
  const double lambda = config_.transfer_cost;
  const std::vector<double> weights = build_weights(config_, map);
  // Under uniform rates, buying a copy at a non-requesting server never
  // beats extending an existing one, so the buy pass can be skipped; the
  // reference solver cross-checks this in tests.
  const bool need_buy_pass = !uniform_rates(config_);

  std::vector<double> dp(full, kInfCost);
  std::vector<double> work(full);
  std::vector<double> next(full, kInfCost);
  dp[std::size_t{1} << map.init_bit] = 0.0;

  for (const Event& event : build_events(map, trace)) {
    const std::size_t abit = std::size_t{1} << event.bit;
    // val[S] = dp[S] + storage over the gap + serve cost.
    work[0] = kInfCost;
    for (std::size_t s = 1; s < full; ++s) {
      work[s] = dp[s] + event.gap * weights[s] +
                ((s & abit) ? 0.0 : lambda);
    }
    // Superset-min: work[T] = min_{S ⊇ T} val[S].
    for (int b = 0; b < k; ++b) {
      const std::size_t bbit = std::size_t{1} << b;
      for (std::size_t t = 0; t < full; ++t) {
        if (!(t & bbit)) work[t] = std::min(work[t], work[t | bbit]);
      }
    }
    // Buy pass: work[T] = min_{U ⊆ T} (work[U] + λ·|T \ U|).
    if (need_buy_pass) {
      for (int b = 0; b < k; ++b) {
        const std::size_t bbit = std::size_t{1} << b;
        for (std::size_t t = 0; t < full; ++t) {
          if (t & bbit) work[t] = std::min(work[t], work[t ^ bbit] + lambda);
        }
      }
    }
    next[0] = kInfCost;
    for (std::size_t s = 1; s < full; ++s) next[s] = work[s & ~abit];
    dp.swap(next);
  }

  double best = kInfCost;
  for (std::size_t s = 1; s < full; ++s) best = std::min(best, dp[s]);
  REPL_CHECK(best < kInfCost);
  return best;
}

OfflinePlan OptimalDpSolver::solve_with_plan(const Trace& trace) const {
  REPL_REQUIRE(trace.num_servers() == config_.num_servers);
  OfflinePlan plan;
  if (trace.empty()) return plan;
  const ActiveMap map = build_active_map(config_, trace);
  const int k = map.bits();
  REPL_REQUIRE_MSG(k <= 16, "plan reconstruction uses the O(4^k) reference "
                            "transition; limited to 16 active servers");
  const std::size_t full = std::size_t{1} << k;
  const double lambda = config_.transfer_cost;
  const std::vector<double> weights = build_weights(config_, map);
  const std::vector<Event> events = build_events(map, trace);

  std::vector<double> dp(full, kInfCost);
  std::vector<double> next(full);
  dp[std::size_t{1} << map.init_bit] = 0.0;
  // parents[e][S'] = the predecessor state chosen at event e.
  std::vector<std::vector<std::uint32_t>> parents(
      events.size(), std::vector<std::uint32_t>(full, 0));

  for (std::size_t e = 0; e < events.size(); ++e) {
    const Event& event = events[e];
    const std::size_t abit = std::size_t{1} << event.bit;
    std::fill(next.begin(), next.end(), kInfCost);
    for (std::size_t s = 1; s < full; ++s) {
      if (dp[s] == kInfCost) continue;
      const double base =
          dp[s] + event.gap * weights[s] + ((s & abit) ? 0.0 : lambda);
      for (std::size_t sp = 1; sp < full; ++sp) {
        const double bought = static_cast<double>(
            std::popcount(sp & ~(s | abit)));
        const double cost = base + lambda * bought;
        if (cost < next[sp]) {
          next[sp] = cost;
          parents[e][sp] = static_cast<std::uint32_t>(s);
        }
      }
    }
    dp.swap(next);
  }

  std::size_t best_state = 0;
  double best = kInfCost;
  for (std::size_t s = 1; s < full; ++s) {
    if (dp[s] < best) {
      best = dp[s];
      best_state = s;
    }
  }
  REPL_CHECK(best < kInfCost);

  plan.cost = best;
  plan.active_servers = map.bit_to_server;
  plan.final_state = static_cast<std::uint32_t>(best_state);
  plan.states.assign(trace.size(), 0);
  // Backtrack post-states: post[e] is the holder set chosen after event e
  // (event 0 = the dummy r0, event e ≥ 1 = trace request e-1). The gap
  // ending at request i is crossed by post[i], so states[i] = post[i].
  std::vector<std::uint32_t> post(events.size());
  std::uint32_t cur = plan.final_state;
  for (std::size_t e = events.size(); e-- > 0;) {
    post[e] = cur;
    cur = parents[e][cur];
  }
  REPL_CHECK_MSG(cur == (std::uint32_t{1} << map.init_bit),
                 "plan backtrack did not reach the initial state");
  for (std::size_t i = 0; i < trace.size(); ++i) plan.states[i] = post[i];
  return plan;
}

double optimal_offline_cost(const SystemConfig& config, const Trace& trace) {
  return OptimalDpSolver(config).solve(trace);
}

double evaluate_plan(const SystemConfig& config, const Trace& trace,
                     const OfflinePlan& plan) {
  REPL_REQUIRE(plan.states.size() == trace.size());
  const double lambda = config.transfer_cost;
  const auto weight = [&](std::uint32_t s) {
    double w = 0.0;
    for (int b = 0; b < static_cast<int>(plan.active_servers.size()); ++b) {
      if (s & (std::uint32_t{1} << b)) {
        w += config.storage_rate(
            plan.active_servers[static_cast<std::size_t>(b)]);
      }
    }
    return w;
  };
  std::vector<int> server_to_bit(
      static_cast<std::size_t>(config.num_servers), -1);
  for (std::size_t b = 0; b < plan.active_servers.size(); ++b) {
    server_to_bit[static_cast<std::size_t>(plan.active_servers[b])] =
        static_cast<int>(b);
  }
  const int init_bit =
      server_to_bit[static_cast<std::size_t>(config.initial_server)];
  REPL_REQUIRE(init_bit >= 0);

  double cost = 0.0;
  // Copies bought at time 0 (beyond the initial one) cost a transfer each.
  if (!trace.empty()) {
    const std::uint32_t bought0 =
        plan.states[0] & ~(std::uint32_t{1} << init_bit);
    cost += lambda * static_cast<double>(std::popcount(bought0));
  }
  double prev_time = 0.0;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const std::uint32_t state = plan.states[i];  // holders over the gap
    REPL_REQUIRE_MSG(state != 0, "empty holder set in plan");
    cost += (trace[i].time - prev_time) * weight(state);
    const int abit =
        server_to_bit[static_cast<std::size_t>(trace[i].server)];
    REPL_REQUIRE(abit >= 0);
    const std::uint32_t amask = std::uint32_t{1} << abit;
    if (!(state & amask)) cost += lambda;  // served by transfer
    const std::uint32_t next_set =
        (i + 1 < trace.size()) ? plan.states[i + 1] : plan.final_state;
    REPL_REQUIRE_MSG(next_set != 0, "empty holder set in plan");
    // Copies appearing at servers other than the requester cost a
    // transfer each.
    cost += lambda * static_cast<double>(
                         std::popcount(next_set & ~(state | amask)));
    prev_time = trace[i].time;
  }
  return cost;
}

}  // namespace repl
