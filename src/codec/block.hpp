// Block-framed container: the streaming envelope of the codec subsystem.
//
// A framed stream is a sequence of self-delimiting blocks appended to an
// underlying std::iostream position:
//
//   offset  size  field
//   0       4     body_len    payload bytes that follow the 16-byte frame
//   4       4     aux         caller-defined (e.g. events in the block)
//   8       4     body_crc    CRC-32C over the payload
//   12      4     frame_crc   CRC-32C over the 12 frame bytes above
//   16      --    payload
//
// Two CRCs on purpose: the frame fields get their own, verifiable
// without touching the payload, because skip paths *steer by them* —
// body_len decides how far to seek and aux how many logical items the
// seek covered. A flipped bit in a skipped block's frame would
// otherwise silently misposition every later read (e.g. an event-log
// resume landing N events off its checkpoint offset). So: a bit flip
// anywhere in any frame, or in the payload of a block that is read, is
// detected with a positioned diagnostic (block index + byte offset);
// only the payload bytes of wholly *skipped* blocks go unverified —
// and nothing decodes from those. Truncation inside a frame or payload
// is likewise positioned; a stream that ends exactly at a block
// boundary reads as a clean EOF (whether that is acceptable is the
// caller's protocol decision — the event log cross-checks its header's
// event count).
//
// skip_block() reads only the 16-byte frame (verified) and seeks past
// the payload: consumers that know how many logical items each block
// holds (the aux field) can skip N items in O(blocks) seeks without
// decoding — the contract EventLogReader::skip_events keeps on
// compressed logs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace repl {

/// Sanity cap on one block's payload: a corrupt length field must fail
/// with a diagnostic, not a multi-GB allocation.
inline constexpr std::size_t kMaxBlockBytes = std::size_t{1} << 26;

/// Bytes of the frame that precedes every block payload.
inline constexpr std::size_t kBlockFrameBytes = 16;

/// The steering fields of one parsed frame (the frame CRC is consumed by
/// verification and not carried).
struct BlockFrameHeader {
  std::uint32_t body_len = 0;
  std::uint32_t aux = 0;
  std::uint32_t body_crc = 0;
};

/// Outcome of parse_block_frame: the frame is usable only on kOk.
enum class BlockFrameStatus { kOk, kBadFrameCrc, kImplausibleLength };

/// Encodes the 16-byte frame (including both CRCs) for `payload` into
/// `out`. The shared producer half of the wire format: BlockWriter and
/// the network client emit identical bytes.
void encode_block_frame(unsigned char* out, std::uint32_t aux,
                        const unsigned char* payload, std::size_t size);

/// Parses and verifies a 16-byte frame. This is the incremental
/// validation entry point: consumers that receive frames in arbitrary
/// byte chunks (the socket front-end) validate each frame the moment its
/// 16 bytes are assembled, before a single payload byte is trusted —
/// exactly the check BlockReader::next_frame applies on files. Returns
/// kOk and fills `frame`, or names what is wrong; `max_body_bytes` caps
/// the advertised payload length.
BlockFrameStatus parse_block_frame(const unsigned char* raw,
                                   BlockFrameHeader& frame,
                                   std::size_t max_body_bytes =
                                       kMaxBlockBytes);

/// Verifies a fully assembled payload against its frame's body CRC.
bool verify_block_payload(const BlockFrameHeader& frame,
                          const unsigned char* payload, std::size_t size);

/// Appends framed blocks to `out`. The writer does not own the stream
/// and never seeks it; callers interleave their own header writes.
class BlockWriter {
 public:
  /// `name` labels the destination (a path) in error messages.
  BlockWriter(std::ostream& out, std::string name);

  BlockWriter(const BlockWriter&) = delete;
  BlockWriter& operator=(const BlockWriter&) = delete;

  /// Frames and writes one block. Throws std::runtime_error on I/O
  /// failure or a payload over kMaxBlockBytes.
  void write_block(std::uint32_t aux, const unsigned char* payload,
                   std::size_t size);
  void write_block(std::uint32_t aux,
                   const std::vector<unsigned char>& payload) {
    write_block(aux, payload.data(), payload.size());
  }

  std::uint64_t blocks_written() const { return blocks_; }

 private:
  std::ostream& out_;
  std::string name_;
  std::uint64_t blocks_ = 0;
};

/// Reads framed blocks from `in`, starting at its current position.
/// Corruption (bad CRC, implausible length, truncation mid-frame or
/// mid-payload) throws std::runtime_error naming the source, the block
/// index, and the byte offset.
class BlockReader {
 public:
  /// `name` labels the source (a path) in error messages; `base_offset`
  /// is the stream position of block 0 (for diagnostics only).
  BlockReader(std::istream& in, std::string name,
              std::uint64_t base_offset = 0);

  BlockReader(const BlockReader&) = delete;
  BlockReader& operator=(const BlockReader&) = delete;

  /// Reads the next frame without consuming its payload; returns false
  /// at a clean EOF (stream ends exactly between blocks). `aux` is the
  /// frame's caller-defined field — enough for a consumer to decide
  /// between read_payload() (decode) and skip_payload() (seek), which
  /// must follow before the next frame. Calling next_frame() again
  /// before consuming returns the same frame.
  bool next_frame(std::uint32_t& aux);

  /// Consumes the pending frame's payload into `payload` (replaced) and
  /// verifies the CRC.
  void read_payload(std::vector<unsigned char>& payload);

  /// Consumes the pending frame's payload with a seek — the payload
  /// bytes are not read or verified (nothing decodes from them; the
  /// frame itself was CRC-verified by next_frame). A payload the stream
  /// cannot cover (truncated final block) throws a positioned error
  /// rather than seeking past EOF.
  void skip_payload();

  /// Conveniences: next_frame + read_payload / skip_payload.
  bool read_block(std::uint32_t& aux, std::vector<unsigned char>& payload);
  bool skip_block(std::uint32_t& aux);

  std::uint64_t blocks_read() const { return blocks_; }

  /// Stream offset of the next unconsumed frame — i.e. the bytes
  /// consumed so far, counted from stream position 0 (the base_offset
  /// prefix included). Feeds decode-rate metrics.
  std::uint64_t bytes_consumed() const { return offset_; }

 private:
  [[noreturn]] void fail(const std::string& what) const;

  /// Sentinel: the stream end has not been measured yet.
  static constexpr std::uint64_t kUnknownEnd = ~std::uint64_t{0};

  std::istream& in_;
  std::string name_;
  std::uint64_t offset_;  // stream offset of the pending/next frame
  std::uint64_t end_offset_ = kUnknownEnd;  // lazily measured stream end
  std::uint64_t blocks_ = 0;
  bool have_frame_ = false;
  std::uint32_t frame_[4] = {0, 0, 0, 0};
};

}  // namespace repl
