// The spec-driven construction facade: one way to assemble components
// for every driver in the repo.
//
// An ExperimentSpec is a pair of component-spec strings (api/spec.hpp);
// EngineBuilder turns it into a StreamingEngine — including restoring
// one from a checkpoint, where the snapshot's recorded specs are
// cross-checked against the builder's (mismatch fails with a diagnostic
// naming both) or, when the builder carries no specs, used to
// reconstruct the factories from the snapshot alone. The free factory
// adapters serve the offline drivers: Simulator via run_experiment and
// ParallelRunner/run_multi_object via the ObjectContext factories
// (which supply the per-object trace, so clairvoyant predictors work
// offline; the engine path rejects them up front — it is online).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "api/registry.hpp"
#include "core/simulator.hpp"
#include "engine/engine.hpp"
#include "run/parallel_runner.hpp"

namespace repl {

/// One policy×predictor experiment point, as spec strings. Defaults
/// reproduce the repo's historical wiring (DRWP + last-gap).
struct ExperimentSpec {
  std::string policy = "drwp(alpha=0.3)";
  std::string predictor = "last_gap";
};

/// Spec-driven factories for ParallelRunner (and through it
/// run_multi_object): each object's components are built from the
/// canonical spec with the object's deterministic seed and its trace —
/// so every registered component, including the clairvoyant ones, is
/// available to offline experiments. Throws SpecError on a bad spec at
/// adapter-construction time, not per object.
ObjectPolicyFactory spec_object_policy_factory(const SystemConfig& config,
                                               const std::string& spec_text);
ObjectPredictorFactory spec_object_predictor_factory(
    const SystemConfig& config, const std::string& spec_text);

/// Runs one trace through Simulator under spec-built components (the
/// trace is supplied to clairvoyant components; `seed` feeds randomized
/// ones).
SimulationResult run_experiment(const ExperimentSpec& experiment,
                                const SystemConfig& config,
                                const Trace& trace,
                                const SimulationOptions& options = {},
                                std::uint64_t seed = 0x5eed5eed5eed5eedULL);

/// Builds StreamingEngines from specs — the single construction path
/// used by engine_serve and bench_engine. policy()/predictor() parse,
/// validate, causality-check (clairvoyant specs are rejected: the
/// engine is online) and canonicalize immediately, so a bad spec fails
/// at the CLI boundary with a precise diagnostic. The canonical strings
/// are threaded into EngineOptions and therefore into every checkpoint
/// the engine writes.
class EngineBuilder {
 public:
  EngineBuilder& config(SystemConfig config);
  EngineBuilder& options(EngineOptions options);
  EngineBuilder& policy(const std::string& spec_text);
  EngineBuilder& predictor(const std::string& spec_text);
  EngineBuilder& experiment(const ExperimentSpec& experiment);

  /// Canonical spec strings; empty while unset.
  const std::string& policy_spec() const { return policy_text_; }
  const std::string& predictor_spec() const { return predictor_text_; }

  /// Thread-safe engine factories over the current specs (defaults
  /// applied when unset).
  EnginePolicyFactory policy_factory() const;
  EnginePredictorFactory predictor_factory() const;

  /// A fresh engine. Unset specs fall back to ExperimentSpec defaults.
  std::unique_ptr<StreamingEngine> build() const;

  /// An engine resumed from `snapshot_path`. With specs set, the
  /// snapshot's recorded specs must match (canonical string equality) —
  /// mismatch throws naming both sides. With no specs set, the
  /// snapshot's own specs reconstruct the factories ("self-construct");
  /// a snapshot written without specs then fails with a diagnostic
  /// asking for explicit ones.
  std::unique_ptr<StreamingEngine> restore(
      const std::string& snapshot_path) const;

 private:
  /// Parses + validates + causality-checks; returns the canonical AST.
  ComponentSpec check_engine_spec(ComponentKind kind,
                                  const std::string& spec_text) const;

  SystemConfig config_;
  EngineOptions options_;
  std::optional<ComponentSpec> policy_;
  std::optional<ComponentSpec> predictor_;
  std::string policy_text_;
  std::string predictor_text_;
};

}  // namespace repl
