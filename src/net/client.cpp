#include "net/client.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <utility>

#include "codec/block.hpp"
#include "net/wire.hpp"
#include "util/check.hpp"

namespace repl {

EventStreamClient::EventStreamClient(Socket sock,
                                     EventStreamClientOptions options)
    : sock_(std::move(sock)), options_(options) {
  REPL_REQUIRE_MSG(options_.block_events > 0, "block_events must be positive");
  pending_.reserve(options_.block_events);
}

EventStreamClient::~EventStreamClient() {
  if (!finished_ && !aborted_ && handshaken_) {
    try {
      finish();
    } catch (...) {
      // Destructor cleanup: the peer may already be gone.
    }
  }
}

std::uint64_t EventStreamClient::handshake(std::uint32_t num_servers) {
  REPL_REQUIRE_MSG(!handshaken_, "handshake already performed");
  unsigned char header[EventLogHeader::kSize];
  encode_stream_header(header, num_servers);
  sock_.write_all(header, sizeof(header));
  unsigned char ack[kNetAckBytes];
  if (!sock_.read_exact(ack, sizeof(ack))) {
    throw std::runtime_error(
        "server closed the connection during handshake (stream rejected?)");
  }
  handshaken_ = true;
  return decode_net_ack(ack);
}

bool EventStreamClient::send(const LogEvent& event) {
  REPL_REQUIRE_MSG(handshaken_, "handshake must precede send");
  if (aborted_) return false;
  pending_.push_back(event);
  ++events_sent_;
  if (pending_.size() >= options_.block_events) return flush();
  return true;
}

bool EventStreamClient::flush() {
  if (aborted_ || pending_.empty()) return !aborted_;
  body_.clear();
  encode_event_block(pending_.data(), pending_.size(), body_);
  frame_.resize(kBlockFrameBytes + body_.size());
  encode_block_frame(frame_.data(),
                     static_cast<std::uint32_t>(pending_.size()), body_.data(),
                     body_.size());
  std::copy(body_.begin(), body_.end(), frame_.begin() + kBlockFrameBytes);
  pending_.clear();
  return write_paced(frame_.data(), frame_.size());
}

bool EventStreamClient::send_trace(std::uint64_t trace_id,
                                   std::uint64_t span_id) {
  REPL_REQUIRE_MSG(handshaken_, "handshake must precede send_trace");
  if (!flush()) return false;  // keep queued events ahead of the context
  frame_.clear();
  encode_trace_frame(frame_, trace_id, span_id);
  return write_paced(frame_.data(), frame_.size());
}

void EventStreamClient::finish() {
  if (finished_) return;
  finished_ = true;
  if (!flush()) return;  // aborted mid-flush: nothing left to close cleanly
  sock_.shutdown_write();
}

bool EventStreamClient::write_paced(const unsigned char* data,
                                    std::size_t size) {
  const std::size_t chunk =
      options_.chunk_bytes > 0 ? options_.chunk_bytes : size;
  std::size_t sent = 0;
  while (sent < size) {
    std::size_t n = std::min(chunk, size - sent);
    if (options_.abort_after_bytes > 0) {
      const std::uint64_t left = options_.abort_after_bytes - bytes_sent_;
      if (left < n) n = static_cast<std::size_t>(left);
    }
    if (n > 0) {
      sock_.write_all(data + sent, n);
      sent += n;
      bytes_sent_ += n;
    }
    if (options_.abort_after_bytes > 0 &&
        bytes_sent_ >= options_.abort_after_bytes) {
      // The abrupt drop the test asked for: no shutdown handshake, the
      // server sees EOF (or a reset) mid-frame.
      aborted_ = true;
      sock_.close();
      return false;
    }
    if (sent < size && options_.pace_seconds > 0.0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double>(options_.pace_seconds));
    }
  }
  return true;
}

ReconnectingEventStreamClient::ReconnectingEventStreamClient(
    std::function<Socket()> dial, std::uint32_t num_servers,
    ReconnectPolicy policy, EventStreamClientOptions options)
    : dial_(std::move(dial)),
      num_servers_(num_servers),
      policy_(policy),
      options_(options),
      rng_(policy.seed) {
  REPL_REQUIRE_MSG(dial_ != nullptr, "reconnecting client needs a dial fn");
  REPL_REQUIRE_MSG(policy_.max_attempts >= 1,
                   "reconnect policy needs at least one attempt");
  REPL_REQUIRE_MSG(policy_.initial_backoff_seconds >= 0.0 &&
                       policy_.max_backoff_seconds >=
                           policy_.initial_backoff_seconds,
                   "reconnect backoff bounds are inverted");
  REPL_REQUIRE_MSG(policy_.jitter >= 0.0 && policy_.jitter < 2.0,
                   "reconnect jitter must lie in [0, 2)");
}

std::uint64_t ReconnectingEventStreamClient::connect() {
  double delay = policy_.initial_backoff_seconds;
  for (std::size_t attempt = 0;; ++attempt) {
    ++attempts_;
    try {
      client_ = std::make_unique<EventStreamClient>(dial_(), options_);
      resume_events_ = client_->handshake(num_servers_);
      ++connects_;
      return resume_events_;
    } catch (const std::exception&) {
      client_.reset();
      if (attempt + 1 >= policy_.max_attempts) throw;
    }
    // Deterministic jitter around the capped exponential schedule, so a
    // fleet of clients (or respawned workers) does not thundering-herd
    // the same instant while tests stay reproducible from the seed.
    const double jittered =
        delay * (1.0 - policy_.jitter / 2.0 + policy_.jitter *
                                                  rng_.next_double());
    if (policy_.on_retry) policy_.on_retry(attempt, jittered);
    if (jittered > 0.0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(jittered));
    }
    delay = std::min(policy_.max_backoff_seconds, delay * 2.0);
  }
}

void ReconnectingEventStreamClient::drop() { client_.reset(); }

bool ReconnectingEventStreamClient::send(const LogEvent& event) {
  REPL_REQUIRE_MSG(client_ != nullptr, "send on a disconnected client");
  return client_->send(event);
}

bool ReconnectingEventStreamClient::flush() {
  REPL_REQUIRE_MSG(client_ != nullptr, "flush on a disconnected client");
  return client_->flush();
}

bool ReconnectingEventStreamClient::send_trace(std::uint64_t trace_id,
                                               std::uint64_t span_id) {
  REPL_REQUIRE_MSG(client_ != nullptr, "send_trace on a disconnected client");
  return client_->send_trace(trace_id, span_id);
}

void ReconnectingEventStreamClient::finish() {
  REPL_REQUIRE_MSG(client_ != nullptr, "finish on a disconnected client");
  client_->finish();
}

}  // namespace repl
