// Incremental bookkeeping for the adapted Algorithm 1 (Section 8).
//
// Maintains, as requests arrive:
//
//  * OPTL — a lower bound on the optimal offline cost:
//      Σ_{i: t_i − t_{p(i)} > λ} λ + Σ_{i: t_i − t_{p(i)} ≤ λ} (t_i − t_{p(i)})
//      + Σ_{i: t_i − t_{i−1} > λ} (t_i − t_{i−1} − λ),
//    where p(i) is the previous request at the same server (the dummy r0
//    counts for the initial server) and i−1 is the previous request
//    anywhere;
//
//  * OnlineU — an upper bound on the online cost: the Proposition-2
//    allocations of all arrived requests plus a conservative 2λ per
//    server that has received a request (the worst-case cost beyond each
//    server's last seen request when its pending prediction turns out
//    wrong).
//
// The adapted algorithm reverts to the prediction-less rule whenever
// OnlineU / OPTL exceeds the target robustness 2 + β.
#pragma once

#include <cmath>
#include <limits>
#include <vector>

#include "checkpoint/state_io.hpp"
#include "core/types.hpp"

namespace repl {

class OnlineCostEstimator {
 public:
  explicit OnlineCostEstimator(const SystemConfig& config);

  /// Records request r_i and how the policy served it. Must be called in
  /// request order.
  ///
  /// `prev_intended` is l_i, the intended duration set after the previous
  /// request at this server (NaN for a server's first request);
  /// `prev_request_time` is t_{p(i)} (0 for the initial server's dummy;
  /// NaN if none). `special_since` is meaningful when `source_special`.
  void record(int server, double time, bool local, bool source_special,
              double special_since, double prev_intended,
              double prev_request_time);

  double opt_lower_bound() const { return opt_l_; }
  double online_upper_bound() const {
    return allocated_ +
           2.0 * lambda_ * static_cast<double>(servers_seen_count_);
  }

  /// OnlineU / OPTL; +inf while OPTL is still 0.
  double ratio_bound() const;

  std::size_t requests_seen() const { return requests_seen_; }

  /// Checkpoint protocol: the accumulators and the seen-server set; λ is
  /// construction state and only cross-checked.
  void save_state(StateWriter& out) const;
  void load_state(StateReader& in);

 private:
  double lambda_;
  double opt_l_ = 0.0;
  double allocated_ = 0.0;
  double last_global_time_ = 0.0;  // the dummy r0 arises at time 0
  std::vector<bool> server_seen_;
  std::size_t servers_seen_count_ = 0;
  std::size_t requests_seen_ = 0;
};

}  // namespace repl
