// Descriptive statistics of a trace, used to characterize workloads in
// the benches and to sanity-check the IBM-like synthesizer against the
// figures the paper quotes (request count, mean inter-request time).
#pragma once

#include <string>
#include <vector>

#include "trace/trace.hpp"

namespace repl {

struct TraceStats {
  std::size_t num_requests = 0;
  int num_servers = 0;
  int active_servers = 0;
  double duration = 0.0;
  double mean_global_gap = 0.0;      // between consecutive requests anywhere
  double mean_per_server_gap = 0.0;  // between consecutive requests at the
                                     // same server (pooled over servers)
  double median_per_server_gap = 0.0;
  double p90_per_server_gap = 0.0;
  std::vector<std::size_t> per_server_counts;

  /// Fraction of same-server gaps that are <= threshold. The competitive
  /// behaviour of Algorithm 1 is governed by where gaps fall relative to
  /// alpha*lambda and lambda.
  double fraction_gaps_within(double threshold) const;

  std::string summary() const;

 private:
  friend TraceStats compute_trace_stats(const Trace&);
  std::vector<double> per_server_gaps_;
};

TraceStats compute_trace_stats(const Trace& trace);

}  // namespace repl
