// Client half of the live-ingest wire protocol.
//
// EventStreamClient turns a connected socket into an event sink: it
// performs the handshake (stream header out, ACK with the server's
// resume offset back), batches events into v2 block frames — the same
// bytes EventLogWriter puts on disk — and half-closes at a frame
// boundary when finished. The options exist mostly for tests and load
// generation: tiny blocks to multiply frame boundaries, chunked+paced
// writes to simulate a slow or trickling peer, and a byte budget after
// which the connection is dropped mid-frame to exercise the server's
// disconnect handling.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "net/socket.hpp"
#include "trace/event_log.hpp"
#include "util/rng.hpp"

namespace repl {

struct EventStreamClientOptions {
  /// Events per block frame. Smaller blocks mean lower latency per event
  /// and more framing overhead.
  std::size_t block_events = kEventLogBlockEvents;
  /// When non-zero, each frame is written in chunks of at most this many
  /// bytes (with `pace_seconds` of sleep between chunks) — a controllable
  /// slow client.
  std::size_t chunk_bytes = 0;
  double pace_seconds = 0.0;
  /// When non-zero, the connection is dropped abruptly once this many
  /// payload bytes (header excluded) have been written — lands mid-frame
  /// unless aligned to a boundary on purpose. Test hook.
  std::uint64_t abort_after_bytes = 0;
};

class EventStreamClient {
 public:
  EventStreamClient(Socket sock, EventStreamClientOptions options = {});
  ~EventStreamClient();

  EventStreamClient(const EventStreamClient&) = delete;
  EventStreamClient& operator=(const EventStreamClient&) = delete;

  /// Sends the stream header and reads the server's ACK. Returns the
  /// number of events the server has already ingested (from a restored
  /// checkpoint); the caller should skip that many before streaming.
  /// Throws std::runtime_error on a refused or malformed handshake.
  std::uint64_t handshake(std::uint32_t num_servers);

  /// Queues one event; flushes a full frame when the block fills. Returns
  /// false once the abort budget has been hit (the connection is gone and
  /// further sends are no-ops — the test got the disconnect it asked for).
  bool send(const LogEvent& event);

  /// Flushes any partial block as a short frame.
  bool flush();

  /// Flushes pending events, then sends a trace-context frame: every
  /// event that follows is attributed to (trace_id, span_id) by the
  /// server. Requires a nonzero trace_id. Returns false after an abort.
  bool send_trace(std::uint64_t trace_id, std::uint64_t span_id);

  /// Flushes and half-closes the write side at a frame boundary — the
  /// clean end-of-stream the server expects. No-op after an abort.
  void finish();

  std::uint64_t events_sent() const { return events_sent_; }
  std::uint64_t bytes_sent() const { return bytes_sent_; }
  bool aborted() const { return aborted_; }

 private:
  bool write_paced(const unsigned char* data, std::size_t size);

  Socket sock_;
  EventStreamClientOptions options_;
  std::vector<LogEvent> pending_;
  std::vector<unsigned char> body_;
  std::vector<unsigned char> frame_;
  std::uint64_t events_sent_ = 0;
  std::uint64_t bytes_sent_ = 0;
  bool handshaken_ = false;
  bool finished_ = false;
  bool aborted_ = false;
};

/// Dial/backoff policy for ReconnectingEventStreamClient.
struct ReconnectPolicy {
  /// Dial attempts per connect() call before the last error propagates.
  std::size_t max_attempts = 10;
  /// Capped exponential backoff between attempts: the n-th failed attempt
  /// sleeps initial * 2^n (clamped to max), scaled by a deterministic
  /// jitter factor in [1 - jitter/2, 1 + jitter/2] drawn from `seed`.
  double initial_backoff_seconds = 0.02;
  double max_backoff_seconds = 1.0;
  double jitter = 0.5;
  std::uint64_t seed = 0x5eed5eed5eed5eedULL;
  /// Observability hook: called before each backoff sleep with the
  /// 0-based attempt index and the jittered delay about to be slept.
  std::function<void(std::size_t attempt, double delay_seconds)> on_retry;
};

/// Reconnect-with-backoff mode of the event-stream client: owns the dial
/// function instead of a connected socket, so a dropped transport (or a
/// server that is not up yet) is survivable. connect() dials with capped
/// exponential backoff + jitter, handshakes, and returns the server's
/// REPLNACK resume offset — the number of logical-stream events the
/// server already holds. The *caller* owns resumption: replay your
/// source from that offset, then continue send()ing. On a mid-stream
/// send/flush failure, call reconnect() (drop + connect) and resume from
/// the fresh offset — exactly the loop a cluster coordinator runs when
/// it respawns a worker.
class ReconnectingEventStreamClient {
 public:
  /// `dial` must return a connected Socket or throw; it is retried under
  /// the policy's backoff schedule.
  ReconnectingEventStreamClient(std::function<Socket()> dial,
                                std::uint32_t num_servers,
                                ReconnectPolicy policy = {},
                                EventStreamClientOptions options = {});

  /// Establishes (or re-establishes) the transport; returns the server's
  /// resume offset. Throws the last dial/handshake error once
  /// max_attempts is exhausted.
  std::uint64_t connect();

  /// Discards the current transport without the clean finish() half-close
  /// — the right move after a send/flush threw (the socket is already
  /// broken; finishing it would throw again).
  void drop();

  /// drop() + connect().
  std::uint64_t reconnect() {
    drop();
    return connect();
  }

  bool connected() const { return client_ != nullptr; }
  /// The offset returned by the most recent successful handshake.
  std::uint64_t resume_events() const { return resume_events_; }
  /// Successful connections / total dial attempts so far.
  std::size_t connects() const { return connects_; }
  std::size_t attempts() const { return attempts_; }

  /// Pass-throughs to the live transport; REPL_REQUIRE connected().
  /// Errors propagate — call reconnect() and resume from its offset.
  bool send(const LogEvent& event);
  bool flush();
  bool send_trace(std::uint64_t trace_id, std::uint64_t span_id);
  void finish();

 private:
  std::function<Socket()> dial_;
  std::uint32_t num_servers_;
  ReconnectPolicy policy_;
  EventStreamClientOptions options_;
  std::unique_ptr<EventStreamClient> client_;
  Rng rng_;
  std::uint64_t resume_events_ = 0;
  std::size_t connects_ = 0;
  std::size_t attempts_ = 0;
};

}  // namespace repl
