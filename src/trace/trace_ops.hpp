// Trace transformations: windowing, merging, server remapping and time
// scaling. Used to build composite workloads (e.g. splicing a burst into
// a diurnal background) and to down-scale experiments.
#pragma once

#include <vector>

#include "trace/trace.hpp"

namespace repl {

/// Requests with time in (t_begin, t_end], times shifted so the window
/// starts at 0 (i.e. new time = old time - t_begin).
Trace slice_trace(const Trace& trace, double t_begin, double t_end);

/// Interleaves two traces over the same server universe (by time; exact
/// ties are nudged per Trace::from_unsorted).
Trace merge_traces(const Trace& a, const Trace& b);

/// Applies `mapping[old_server] = new_server` and a new server count.
Trace remap_servers(const Trace& trace, const std::vector<int>& mapping,
                    int new_num_servers);

/// Multiplies all request times by `factor` > 0. Combined with a matching
/// λ scaling this leaves all competitive ratios invariant — a property
/// the tests exploit.
Trace scale_time(const Trace& trace, double factor);

/// Keeps every k-th request (k >= 1), preserving times: a crude but
/// useful thinning for quick experiments.
Trace thin_trace(const Trace& trace, std::size_t keep_every);

}  // namespace repl
