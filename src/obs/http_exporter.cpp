#include "obs/http_exporter.hpp"

#include <algorithm>
#include <cctype>
#include <sstream>

#include "obs/exposition.hpp"
#include "obs/federation.hpp"
#include "util/check.hpp"

namespace repl::obs {
namespace {

/// Hard cap on a request head; scrape requests are a few hundred bytes.
constexpr std::size_t kMaxRequestBytes = 16 * 1024;

std::string to_lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return s;
}

std::string trim(const std::string& s) {
  std::size_t begin = s.find_first_not_of(" \t\r");
  if (begin == std::string::npos) return {};
  std::size_t end = s.find_last_not_of(" \t\r");
  return s.substr(begin, end - begin + 1);
}

const char* status_text(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    default: return "Internal Server Error";
  }
}

}  // namespace

std::string HttpRequest::header(const std::string& name) const {
  const std::string lowered = to_lower(name);
  for (const auto& [key, value] : headers) {
    if (key == lowered) return value;
  }
  return {};
}

HttpRequest parse_http_request(const std::string& raw) {
  HttpRequest req;
  const std::size_t line_end = raw.find("\r\n");
  const std::string line =
      line_end == std::string::npos ? raw : raw.substr(0, line_end);
  // Request line: METHOD SP target [SP HTTP/x.y]. A missing version
  // (ancient or hand-rolled clients) is tolerated; a missing target is
  // not.
  std::istringstream parts(line);
  std::string target;
  parts >> req.method >> target >> req.version;
  if (req.method.empty() || target.empty() || target[0] != '/') return req;
  const std::size_t qmark = target.find('?');
  req.path = target.substr(0, qmark);
  if (qmark != std::string::npos) req.query = target.substr(qmark + 1);
  if (!req.version.empty() && req.version.rfind("HTTP/", 0) != 0) return req;
  req.valid = true;

  std::size_t pos = line_end == std::string::npos ? raw.size() : line_end + 2;
  while (pos < raw.size()) {
    const std::size_t next = raw.find("\r\n", pos);
    const std::string header_line =
        next == std::string::npos ? raw.substr(pos) : raw.substr(pos, next - pos);
    if (header_line.empty()) break;
    const std::size_t colon = header_line.find(':');
    if (colon != std::string::npos) {
      req.headers.emplace_back(to_lower(trim(header_line.substr(0, colon))),
                               trim(header_line.substr(colon + 1)));
    }
    if (next == std::string::npos) break;
    pos = next + 2;
  }
  return req;
}

bool http_keepalive_requested(const HttpRequest& request) {
  if (!request.valid) return false;
  const std::string connection = to_lower(request.header("connection"));
  if (request.version == "HTTP/1.0") return connection == "keep-alive";
  if (request.version.empty()) return false;  // 0.9-style one-shot
  return connection != "close";  // HTTP/1.1+: persistent by default
}

std::string http_response(int status, const std::string& content_type,
                          const std::string& body, bool keep_alive) {
  std::ostringstream os;
  os << "HTTP/1.1 " << status << ' ' << status_text(status) << "\r\n"
     << "Content-Type: " << content_type << "\r\n"
     << "Content-Length: " << body.size() << "\r\n"
     << "Connection: " << (keep_alive ? "keep-alive" : "close") << "\r\n\r\n"
     << body;
  return os.str();
}

MetricsHttpServer::MetricsHttpServer(MetricsRegistry& registry,
                                     MetricsHttpOptions options)
    : registry_(registry), options_(std::move(options)) {}

MetricsHttpServer::~MetricsHttpServer() { stop(); }

void MetricsHttpServer::set_json_extra(std::function<void(JsonWriter&)> extra) {
  REPL_CHECK_MSG(!started_, "set_json_extra after start");
  json_extra_ = std::move(extra);
}

void MetricsHttpServer::set_health_extra(
    std::function<void(JsonWriter&)> extra) {
  REPL_CHECK_MSG(!started_, "set_health_extra after start");
  health_extra_ = std::move(extra);
}

void MetricsHttpServer::set_extra_samples(
    std::function<std::vector<Sample>()> extra) {
  REPL_CHECK_MSG(!started_, "set_extra_samples after start");
  extra_samples_ = std::move(extra);
}

void MetricsHttpServer::start() {
  REPL_CHECK_MSG(!started_, "MetricsHttpServer started twice");
  listener_ = std::make_unique<Listener>(
      Listener::tcp(options_.host, options_.port));
  port_ = listener_->port();
  started_ = true;
  thread_ = std::thread([this] { serve_loop(); });
}

void MetricsHttpServer::stop() {
  if (!started_) return;
  listener_->shutdown();
  if (thread_.joinable()) thread_.join();
  listener_.reset();
  started_ = false;
}

void MetricsHttpServer::serve_loop() {
  while (true) {
    Socket client = listener_->accept();
    if (!client.valid()) return;
    try {
      handle_connection(std::move(client));
    } catch (const std::exception&) {
      // A broken scraper connection must never take the exporter down.
    }
  }
}

void MetricsHttpServer::handle_connection(Socket client) {
  std::string raw;
  unsigned char buf[1024];
  std::size_t served = 0;
  for (;;) {
    // Pull the next request head; `raw` may already hold a pipelined one.
    while (raw.size() < kMaxRequestBytes &&
           raw.find("\r\n\r\n") == std::string::npos) {
      const std::size_t n = client.read_some(buf, sizeof(buf));
      if (n == 0) break;  // client half-closed (or sent a CRLF-less head)
      raw.append(reinterpret_cast<const char*>(buf), n);
    }
    const std::size_t head_end = raw.find("\r\n\r\n");
    if (head_end == std::string::npos) {
      // EOF mid-head. A clean close between keep-alive requests is
      // normal; anything else gets one best-effort response.
      if (raw.empty() && served > 0) break;
      const std::string response = respond(parse_http_request(raw), false);
      client.write_all(
          reinterpret_cast<const unsigned char*>(response.data()),
          response.size());
      break;
    }
    const HttpRequest request = parse_http_request(raw.substr(0, head_end + 4));
    raw.erase(0, head_end + 4);
    ++served;
    // Requests with bodies are not served here (GET only); rather than
    // parse one out of the stream, close after responding.
    const bool keep_alive = http_keepalive_requested(request) &&
                            served < options_.max_requests_per_connection &&
                            request.header("content-length").empty();
    const std::string response = respond(request, keep_alive);
    client.write_all(reinterpret_cast<const unsigned char*>(response.data()),
                     response.size());
    if (!keep_alive) break;
  }
  client.shutdown_write();
}

std::vector<Sample> MetricsHttpServer::collect_samples() {
  std::vector<Sample> samples = registry_.collect();
  if (extra_samples_) {
    std::vector<Sample> extra = extra_samples_();
    samples.insert(samples.end(), std::make_move_iterator(extra.begin()),
                   std::make_move_iterator(extra.end()));
    sort_samples(samples);
  }
  return samples;
}

std::string MetricsHttpServer::respond(const HttpRequest& request,
                                       bool keep_alive) {
  if (!request.valid) {
    return http_response(400, "text/plain; charset=utf-8", "bad request\n",
                         keep_alive);
  }
  if (request.method != "GET") {
    return http_response(405, "text/plain; charset=utf-8",
                         "method not allowed\n", keep_alive);
  }
  const bool wants_json =
      request.header("accept").find("application/json") != std::string::npos;
  if (request.path == "/metrics" && !wants_json) {
    return http_response(200, prometheus_content_type(),
                         prometheus_text(collect_samples()), keep_alive);
  }
  if (request.path == "/metrics" || request.path == "/metrics.json") {
    return http_response(200, "application/json",
                         metrics_json_text(collect_samples(), json_extra_),
                         keep_alive);
  }
  if (request.path == "/healthz") {
    JsonWriter w;
    w.begin_object();
    w.key("status").value("ok");
    if (health_extra_) health_extra_(w);
    w.end_object();
    return http_response(200, "application/json", w.str(), keep_alive);
  }
  return http_response(404, "text/plain; charset=utf-8", "not found\n",
                       keep_alive);
}

}  // namespace repl::obs
