// Algorithm-1 (DRWP) behavioural tests: hand-simulated scenarios checked
// step by step against the pseudocode, tie-breaking conventions, the
// paper's Figure-5/Figure-6 walkthroughs, and API contracts.
#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "analysis/request_types.hpp"
#include "core/drwp.hpp"
#include "core/simulator.hpp"
#include "predictor/fixed.hpp"
#include "test_util.hpp"
#include "trace/paper_instances.hpp"

namespace repl {
namespace {

using testing::make_config;

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr Prediction kBeyond{false};
constexpr Prediction kWithin{true};

TEST(Drwp, RejectsBadAlpha) {
  EXPECT_THROW(DrwpPolicy(0.0), std::invalid_argument);
  EXPECT_THROW(DrwpPolicy(-0.5), std::invalid_argument);
  EXPECT_THROW(DrwpPolicy(std::numeric_limits<double>::infinity()),
               std::invalid_argument);
  EXPECT_THROW(DrwpPolicy(std::numeric_limits<double>::quiet_NaN()),
               std::invalid_argument);
  EXPECT_NO_THROW(DrwpPolicy(1.0));
  EXPECT_NO_THROW(DrwpPolicy(0.01));
  // alpha > 1 is outside the analysis' range but runs (the spec grid
  // sweeps it: see api/registry.hpp).
  EXPECT_NO_THROW(DrwpPolicy(1.5));
}

TEST(Drwp, InitialCopyDurationFollowsDummyPrediction) {
  NullEventSink sink;
  const SystemConfig config = make_config(2, 4.0);
  DrwpPolicy policy(0.5);
  policy.reset(config, kBeyond, sink);
  EXPECT_DOUBLE_EQ(policy.intended_expiry(0), 2.0);  // alpha * lambda
  policy.reset(config, kWithin, sink);
  EXPECT_DOUBLE_EQ(policy.intended_expiry(0), 4.0);  // lambda
  EXPECT_TRUE(policy.holds(0));
  EXPECT_FALSE(policy.holds(1));
  EXPECT_EQ(policy.copy_count(), 1);
}

TEST(Drwp, SingleServerLifecycle) {
  // lambda=4, alpha=0.5, always-beyond: durations 2.
  NullEventSink sink;
  const SystemConfig config = make_config(1, 4.0);
  DrwpPolicy policy(0.5);
  policy.reset(config, kBeyond, sink);

  policy.advance_to(1.0, sink);
  ServeAction a = policy.on_request(0, 1.0, kBeyond, sink);
  EXPECT_TRUE(a.local);
  EXPECT_FALSE(a.source_special);  // regular copy: Type-3
  EXPECT_DOUBLE_EQ(a.intended_duration, 2.0);
  EXPECT_DOUBLE_EQ(policy.intended_expiry(0), 3.0);

  policy.advance_to(2.0, sink);
  a = policy.on_request(0, 2.0, kBeyond, sink);
  EXPECT_TRUE(a.local);
  EXPECT_FALSE(a.source_special);

  // The copy expires at 4; being the only copy it turns special.
  EXPECT_DOUBLE_EQ(policy.next_transition_time(), 4.0);
  policy.advance_to(10.0, sink);
  EXPECT_TRUE(policy.is_special(0));
  EXPECT_EQ(policy.copy_count(), 1);
  EXPECT_DOUBLE_EQ(policy.intended_expiry(0), kInf);

  // Served by the special copy: Type-4, special since 4.
  a = policy.on_request(0, 10.0, kBeyond, sink);
  EXPECT_TRUE(a.local);
  EXPECT_TRUE(a.source_special);
  EXPECT_DOUBLE_EQ(a.special_since, 4.0);
  EXPECT_FALSE(policy.is_special(0));  // renewed as regular
}

TEST(Drwp, TwoServerScenarioCostsAndTypes) {
  // Hand-simulated scenario B (see file comment): lambda=4, alpha=0.5,
  // always-beyond predictions. Requests: (1, s1), (2, s0), (9, s1).
  const SystemConfig config = make_config(2, 4.0);
  const Trace trace(2, {{1.0, 1}, {2.0, 0}, {9.0, 1}});
  FixedPredictor beyond = always_beyond_predictor();
  DrwpPolicy policy(0.5);
  const SimulationResult result =
      Simulator(config).run(policy, trace, beyond);

  EXPECT_EQ(result.num_transfers, 2u);
  EXPECT_EQ(result.num_local, 1u);
  EXPECT_DOUBLE_EQ(result.transfer_cost, 8.0);
  EXPECT_DOUBLE_EQ(result.storage_cost, 11.0);  // s0: 9, s1: [1,3]
  EXPECT_DOUBLE_EQ(result.total_cost(), 19.0);

  const auto types = classify_requests(result);
  ASSERT_EQ(types.size(), 3u);
  EXPECT_EQ(types[0], RequestType::kType1);
  EXPECT_EQ(types[1], RequestType::kType3);
  EXPECT_EQ(types[2], RequestType::kType2);
  EXPECT_DOUBLE_EQ(result.serves[2].special_since, 4.0);

  // Segment check: s0 holds [0,9] and is dropped right after the
  // outgoing transfer from its special copy.
  bool found_s0 = false;
  for (const CopySegment& seg : result.segments) {
    if (seg.server == 0 && seg.begin == 0.0) {
      found_s0 = true;
      EXPECT_DOUBLE_EQ(seg.end, 9.0);
      EXPECT_DOUBLE_EQ(seg.special_from, 4.0);
    }
  }
  EXPECT_TRUE(found_s0);
}

TEST(Drwp, SpecialCopyDroppedAfterOutgoingTransferOnly) {
  // Algorithm 1 lines 15-19: a special copy serving a transfer is
  // dropped; a regular copy serving a transfer is kept.
  NullEventSink sink;
  const SystemConfig config = make_config(2, 4.0);
  DrwpPolicy policy(0.5);
  policy.reset(config, kBeyond, sink);

  // Regular source: s0's copy (E=2) serves a transfer at t=1 and stays.
  policy.advance_to(1.0, sink);
  ServeAction a = policy.on_request(1, 1.0, kBeyond, sink);
  EXPECT_FALSE(a.local);
  EXPECT_EQ(a.source, 0);
  EXPECT_FALSE(a.source_special);
  EXPECT_TRUE(policy.holds(0));  // kept
  EXPECT_EQ(policy.copy_count(), 2);
}

TEST(Drwp, ExpiryAtRequestTimeServesLocally) {
  // Tie convention: t_i <= E_j means a local serve even when t_i == E_j.
  NullEventSink sink;
  const SystemConfig config = make_config(1, 4.0);
  DrwpPolicy policy(0.5);
  policy.reset(config, kBeyond, sink);  // E = 2
  policy.advance_to(2.0, sink);
  EXPECT_TRUE(policy.holds(0));
  const ServeAction a = policy.on_request(0, 2.0, kBeyond, sink);
  EXPECT_TRUE(a.local);
  EXPECT_FALSE(a.source_special);
}

TEST(Drwp, SimultaneousExpiriesResolveByServerIndex) {
  // Two regular copies expiring at the same instant: the lower-indexed
  // server drops (copies remain), the higher-indexed one becomes special.
  NullEventSink sink;
  const SystemConfig config = make_config(3, 4.0);
  DrwpPolicy policy(0.5);
  policy.reset(config, kBeyond, sink);  // s0: E=2
  policy.advance_to(0.5, sink);
  policy.on_request(1, 0.5, kWithin, sink);  // s1: E = 0.5 + 4 = 4.5
  policy.advance_to(2.5, sink);              // s0 dropped at 2 (c=2)
  EXPECT_FALSE(policy.holds(0));
  policy.on_request(2, 2.5, kBeyond, sink);  // s2: E = 2.5 + 2 = 4.5
  EXPECT_EQ(policy.copy_count(), 2);

  policy.advance_to(100.0, sink);
  EXPECT_FALSE(policy.holds(1));      // dropped first (lower index)
  EXPECT_TRUE(policy.holds(2));
  EXPECT_TRUE(policy.is_special(2));  // became the special survivor
}

TEST(Drwp, TransferSourcePrefersSpecialAndIsDeterministic) {
  NullEventSink sink;
  const SystemConfig config = make_config(3, 4.0);
  DrwpPolicy policy(0.5);
  policy.reset(config, kBeyond, sink);
  // s0 regular until 2, then special (only copy).
  policy.advance_to(5.0, sink);
  EXPECT_TRUE(policy.is_special(0));
  const ServeAction a = policy.on_request(2, 5.0, kBeyond, sink);
  EXPECT_EQ(a.source, 0);
  EXPECT_TRUE(a.source_special);
  EXPECT_DOUBLE_EQ(a.special_since, 2.0);
  EXPECT_FALSE(policy.holds(0));  // dropped after the outgoing transfer
  EXPECT_TRUE(policy.holds(2));
  EXPECT_EQ(policy.copy_count(), 1);
}

TEST(Drwp, WithinPredictionExtendsDuration) {
  NullEventSink sink;
  const SystemConfig config = make_config(1, 10.0);
  DrwpPolicy policy(0.3);
  policy.reset(config, kWithin, sink);
  EXPECT_DOUBLE_EQ(policy.intended_expiry(0), 10.0);
  policy.advance_to(1.0, sink);
  const ServeAction a = policy.on_request(0, 1.0, kBeyond, sink);
  EXPECT_DOUBLE_EQ(a.intended_duration, 3.0);
  EXPECT_DOUBLE_EQ(policy.intended_expiry(0), 4.0);
}

TEST(Drwp, CloneIsIndependent) {
  NullEventSink sink;
  const SystemConfig config = make_config(2, 4.0);
  DrwpPolicy policy(0.5);
  policy.reset(config, kBeyond, sink);
  auto clone = policy.clone();
  // Advance the clone far: its copy goes special; the original must be
  // unaffected.
  clone->advance_to(50.0, sink);
  EXPECT_TRUE(dynamic_cast<DrwpPolicy*>(clone.get())->is_special(0));
  EXPECT_FALSE(policy.is_special(0));
  EXPECT_DOUBLE_EQ(policy.next_transition_time(), 2.0);
}

TEST(Drwp, RequiresAdvanceBeforeRequest) {
  NullEventSink sink;
  const SystemConfig config = make_config(1, 4.0);
  DrwpPolicy policy(0.5);
  policy.reset(config, kBeyond, sink);
  // Expiry at 2 is still pending; requesting at 5 without advancing must
  // trip the internal check.
  EXPECT_THROW(policy.on_request(0, 5.0, kBeyond, sink), CheckFailure);
}

TEST(Drwp, AdvanceBackwardsRejected) {
  NullEventSink sink;
  const SystemConfig config = make_config(1, 4.0);
  DrwpPolicy policy(0.5);
  policy.reset(config, kBeyond, sink);
  policy.advance_to(1.5, sink);
  EXPECT_THROW(policy.advance_to(1.0, sink), CheckFailure);
}

TEST(Drwp, Figure6WalkthroughExactCosts) {
  // The paper's tight consistency example (Figure 6), lambda=10,
  // alpha=0.5, eps=1: total online cost is 5λ + αλ = 55, the optimum is
  // 3λ + 2ε = 32, and the request types are Type-2, Type-1, Type-2.
  const double lambda = 10.0, alpha = 0.5, eps = 1.0;
  const SystemConfig config = make_config(2, lambda);
  const Trace trace = make_figure6_trace(lambda, eps, 1);
  FixedPredictor beyond = always_beyond_predictor();  // correct here
  DrwpPolicy policy(alpha);
  const SimulationResult result =
      Simulator(config).run(policy, trace, beyond);

  EXPECT_DOUBLE_EQ(result.total_cost(), 5.0 * lambda + alpha * lambda);
  EXPECT_EQ(result.num_transfers, 3u);

  const auto types = classify_requests(result);
  ASSERT_EQ(types.size(), 3u);
  EXPECT_EQ(types[0], RequestType::kType2);
  EXPECT_EQ(types[1], RequestType::kType1);
  EXPECT_EQ(types[2], RequestType::kType2);

  // r1 is served from the special copy that formed at αλ = 5.
  EXPECT_DOUBLE_EQ(result.serves[0].special_since, alpha * lambda);
  // r3 is served from the special copy that formed at t2 + αλ = 16.
  EXPECT_DOUBLE_EQ(result.serves[2].special_since,
                   lambda + eps + alpha * lambda);
}

TEST(Drwp, Figure5WalkthroughAllTransfers) {
  // The paper's tight robustness example (Figure 5): with always-"beyond"
  // predictions every request is served by a transfer.
  const double lambda = 10.0, alpha = 0.5, eps = 1.0;
  const int m = 6;
  const SystemConfig config = make_config(2, lambda);
  const Trace trace = make_figure5_trace(alpha, lambda, m, eps);
  FixedPredictor beyond = always_beyond_predictor();
  DrwpPolicy policy(alpha);
  const SimulationResult result =
      Simulator(config).run(policy, trace, beyond);

  EXPECT_EQ(result.num_transfers, static_cast<std::size_t>(m));
  EXPECT_EQ(result.num_local, 0u);
  const auto types = classify_requests(result);
  for (const RequestType type : types) {
    EXPECT_EQ(type, RequestType::kType1);
  }
  // Cost: m transfers + the initial copy's αλ + (m-1) regular copies of
  // αλ each, clipped at t_m (the final copy contributes nothing).
  EXPECT_DOUBLE_EQ(result.total_cost(),
                   m * lambda + m * alpha * lambda);
}

TEST(Conventional, IgnoresPredictions) {
  const SystemConfig config = make_config(4, 25.0);
  const Trace trace = testing::random_trace(4, 0.05, 5000.0, 31);
  FixedPredictor within = always_within_predictor();
  FixedPredictor beyond = always_beyond_predictor();
  ConventionalPolicy a, b;
  const double cost_within =
      Simulator(config).run(a, trace, within).total_cost();
  const double cost_beyond =
      Simulator(config).run(b, trace, beyond).total_cost();
  EXPECT_DOUBLE_EQ(cost_within, cost_beyond);
  EXPECT_EQ(a.name(), "conventional");
}

TEST(Conventional, MatchesDrwpAlphaOne) {
  const SystemConfig config = make_config(4, 25.0);
  const Trace trace = testing::random_trace(4, 0.05, 5000.0, 37);
  FixedPredictor beyond = always_beyond_predictor();
  ConventionalPolicy conventional;
  DrwpPolicy drwp(1.0);
  const double a =
      Simulator(config).run(conventional, trace, beyond).total_cost();
  const double b = Simulator(config).run(drwp, trace, beyond).total_cost();
  EXPECT_DOUBLE_EQ(a, b);
}

TEST(Drwp, NameIncludesAlpha) {
  EXPECT_EQ(DrwpPolicy(0.25).name(), "drwp(alpha=0.25)");
}

}  // namespace
}  // namespace repl
