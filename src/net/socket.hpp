// Thin RAII wrappers over POSIX stream sockets.
//
// The net layer needs exactly four things from the OS: listen (TCP on a
// host:port, or a unix-domain socket at a path), accept, connect, and
// blocking read/write with sane error behavior (EINTR retried, SIGPIPE
// suppressed, partial writes looped). This header provides those and
// nothing else — no event loop, no non-blocking modes; concurrency is
// thread-per-connection in the layer above, which is plenty for
// thousands of connections and keeps every code path exercisable by
// deterministic tests.
//
// Failure model: OS-level errors throw std::runtime_error naming the
// operation and errno text. An orderly peer close is not an error —
// read_some returns 0 and read_exact returns false at a clean boundary.
#pragma once

#include <cstddef>
#include <string>

namespace repl {

/// Move-only owner of one socket file descriptor.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket();

  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Reads up to `size` bytes. Returns the count read, or 0 when the
  /// peer closed its write side. Retries EINTR; throws on other errors.
  std::size_t read_some(unsigned char* data, std::size_t size);

  /// Reads exactly `size` bytes. Returns false when the peer closed
  /// cleanly before the first byte; throws when the stream ends
  /// mid-read (the caller's framing told us more bytes were promised).
  bool read_exact(unsigned char* data, std::size_t size);

  /// Writes all of `data`, looping over partial writes. Throws on error
  /// (a vanished peer surfaces as EPIPE/ECONNRESET here, not SIGPIPE).
  void write_all(const unsigned char* data, std::size_t size);

  /// Half-closes the write side: the peer reads EOF after draining what
  /// was sent. The read side stays open for its reply.
  void shutdown_write();

  /// Shuts down both directions without closing the descriptor — wakes
  /// any thread blocked in read/accept on this socket.
  void shutdown_both();

  void close();

 private:
  int fd_ = -1;
};

/// A bound, listening socket. TCP listeners may bind port 0 and read the
/// kernel-assigned port back via port(); unix-domain listeners unlink
/// their path on destruction.
class Listener {
 public:
  /// Binds and listens on `host:port` (port 0 = ephemeral).
  static Listener tcp(const std::string& host, int port);
  /// Binds and listens on a unix-domain socket at `path` (any stale
  /// socket file there is removed first).
  static Listener unix_domain(const std::string& path);

  ~Listener();
  Listener(Listener&&) noexcept = default;
  Listener& operator=(Listener&&) noexcept = default;

  /// Blocks for the next connection. Returns an invalid Socket once the
  /// listener has been shut down (the accept-loop exit signal).
  Socket accept();

  /// Wakes any blocked accept(); later accepts return invalid sockets.
  void shutdown();

  /// Kernel-assigned port for TCP listeners; -1 for unix-domain ones.
  int port() const { return port_; }

  /// "tcp:host:port" or "unix:path" — for logs and metrics.
  const std::string& describe() const { return describe_; }

 private:
  Listener() = default;

  Socket sock_;
  std::string unix_path_;
  std::string describe_;
  int port_ = -1;
};

/// Blocking connect; throws std::runtime_error on failure.
Socket connect_tcp(const std::string& host, int port);
Socket connect_unix(const std::string& path);

}  // namespace repl
