#include "cluster/worker.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "api/experiment.hpp"
#include "checkpoint/partition_manifest.hpp"
#include "cluster/control.hpp"
#include "cluster/partition.hpp"
#include "engine/event_source.hpp"
#include "net/ingest_server.hpp"
#include "net/socket.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"

namespace repl {

namespace {

/// Wraps the worker's event source and validates that every event the
/// coordinator routed here actually belongs to this partition. A
/// misrouted event means the two sides disagree about the partition
/// function — the exact bug the pf_version machinery exists to catch —
/// and silently serving it would double-count the object somewhere, so
/// the serve dies loudly instead.
class PartitionGuardSource final : public EventSource {
 public:
  PartitionGuardSource(EventSource& inner, std::uint32_t partition_id,
                       std::uint32_t num_partitions)
      : inner_(inner), partition_(partition_id), partitions_(num_partitions) {}

  void attach(StreamingEngine& engine) override { inner_.attach(engine); }

  bool next_batch(std::vector<LogEvent>& out) override {
    if (!inner_.next_batch(out)) return false;
    for (const LogEvent& event : out) {
      const std::uint32_t owner = partition_of(event.object, partitions_);
      if (owner != partition_) {
        throw std::runtime_error(
            "misrouted event: object " + std::to_string(event.object) +
            " belongs to partition " + std::to_string(owner) +
            ", this worker serves partition " + std::to_string(partition_));
      }
    }
    return true;
  }

  std::uint64_t bytes_consumed() const override {
    return inner_.bytes_consumed();
  }

 private:
  EventSource& inner_;
  std::uint32_t partition_;
  std::uint32_t partitions_;
};

void send_buffer(Socket& sock, std::vector<unsigned char>& buf) {
  sock.write_all(buf.data(), buf.size());
  buf.clear();
}

}  // namespace

EngineMetrics run_cluster_worker(const ClusterWorkerOptions& options) {
  REPL_REQUIRE_MSG(options.num_partitions >= 1,
                   "worker needs at least one partition");
  REPL_REQUIRE_MSG(options.partition_id < options.num_partitions,
                   "partition id " << options.partition_id
                                   << " out of range (cluster has "
                                   << options.num_partitions
                                   << " partitions)");
  REPL_REQUIRE_MSG(!options.event_socket.empty(),
                   "worker needs an event socket path");
  REPL_REQUIRE_MSG(!options.control_socket.empty(),
                   "worker needs a control socket path");
  REPL_REQUIRE_MSG(options.checkpoint_every == 0 ||
                       !options.snapshot_path.empty(),
                   "checkpoint_every requires snapshot_path");
  const auto num_servers =
      static_cast<std::uint32_t>(options.config.num_servers);

  // The worker always runs with telemetry on: its registry snapshot is
  // what the coordinator federates into the cluster /metrics view. Use
  // the caller's registry when provided, else a worker-owned one.
  obs::MetricsRegistry owned_registry;
  EngineOptions engine_options = options.engine;
  if (engine_options.metrics == nullptr) {
    engine_options.metrics = &owned_registry;
  }
  obs::MetricsRegistry& registry = *engine_options.metrics;

  EngineBuilder builder;
  builder.config(options.config).options(engine_options);
  if (!options.policy_spec.empty()) builder.policy(options.policy_spec);
  if (!options.predictor_spec.empty()) {
    builder.predictor(options.predictor_spec);
  }

  std::unique_ptr<StreamingEngine> engine;
  if (options.resume_from.empty()) {
    engine = builder.build();
  } else {
    // The manifest gate runs before the engine looks at the snapshot:
    // wrong partition, wrong geometry, wrong partition-function version,
    // wrong server count, or wrong seed root all fail here with a
    // diagnostic naming both sides.
    const PartitionManifest manifest = read_partition_manifest(
        partition_manifest_path(options.resume_from));
    require_manifest_matches(manifest, options.partition_id,
                             options.num_partitions, num_servers);
    REPL_REQUIRE_MSG(manifest.base_seed == options.engine.base_seed,
                     "snapshot was cut under base seed "
                         << manifest.base_seed << ", worker runs "
                         << options.engine.base_seed);
    engine = builder.restore(options.resume_from);
    REPL_REQUIRE_MSG(manifest.events_ingested == engine->resume_position(),
                     "partition manifest covers "
                         << manifest.events_ingested
                         << " events but the snapshot resumes at "
                         << engine->resume_position());
  }

  // Dial the coordinator's control listener and identify ourselves. The
  // resume position repeats what the event-plane handshake ACK will say;
  // the hello adds the geometry + pf_version cross-check the event plane
  // has no field for.
  Socket control = connect_unix(options.control_socket);
  std::vector<unsigned char> ctl;
  encode_control_header(ctl);
  ControlHello hello;
  hello.partition_id = options.partition_id;
  hello.num_partitions = options.num_partitions;
  hello.pf_version = kPartitionFunctionVersion;
  hello.num_servers = num_servers;
  hello.resume_events = engine->resume_position();
  hello.base_seed = options.engine.base_seed;
  encode_control_hello(hello, ctl);
  send_buffer(control, ctl);

  NetServerOptions net;
  net.tcp_port = -1;
  net.unix_path = options.event_socket;
  net.batch_events = options.batch_events;
  net.min_connections = 1;
  net.stop_when_idle = true;
  net.metrics = engine_options.metrics;
  NetIngestServer server(net);
  NetIngestSource raw_source(server, num_servers);
  PartitionGuardSource source(raw_source, options.partition_id,
                              options.num_partitions);

  ServeOptions serve;
  serve.batch_events = options.batch_events;
  serve.stats_every = options.stats_every;
  serve.checkpoint_every = options.checkpoint_every;
  serve.checkpoint_path = options.snapshot_path;
  serve.async_ingest = false;  // the net source decodes off-thread
  serve.on_checkpoint = [&] {
    // The engine snapshot just landed atomically; bind it to this slice.
    // stats().events_ingested is the cumulative stream position (it
    // carries across restores), which is exactly what a respawn reports
    // as its resume offset.
    PartitionManifest manifest;
    manifest.partition_id = options.partition_id;
    manifest.num_partitions = options.num_partitions;
    manifest.pf_version = kPartitionFunctionVersion;
    manifest.num_servers = num_servers;
    manifest.base_seed = options.engine.base_seed;
    manifest.events_ingested = engine->stats().events_ingested;
    write_partition_manifest(partition_manifest_path(options.snapshot_path),
                             manifest);
    server.note_checkpoint(manifest.events_ingested);
    ControlCheckpoint note;
    note.events_ingested = manifest.events_ingested;
    encode_control_checkpoint(note, ctl);
    send_buffer(control, ctl);
  };
  // Each metrics message carries the full registry snapshot plus the
  // newest wire trace context, so the coordinator's federated view and
  // the merged timeline both know which batch the numbers belong to.
  const auto send_metrics = [&] {
    ControlMetrics snapshot;
    const obs::TraceContext trace = server.latest_trace();
    snapshot.trace_id = trace.trace_id;
    snapshot.span_id = trace.span_id;
    snapshot.samples = registry.collect();
    encode_control_metrics(snapshot, ctl);
    send_buffer(control, ctl);
  };
  serve.on_batch = [&](const EngineStats& stats) {
    ControlProgress progress;
    progress.events_ingested = stats.events_ingested;
    progress.batches = stats.batches;
    encode_control_progress(progress, ctl);
    send_buffer(control, ctl);
    send_metrics();
  };
  serve.trace_parent = [&server] { return server.latest_trace(); };
  std::vector<EngineObjectFinal> finals;
  serve.collect_finals = &finals;

  REPL_LOG_INFO("cluster", "worker serving partition="
                               << options.partition_id << "/"
                               << options.num_partitions << " resume_events="
                               << engine->resume_position());
  const EngineMetrics metrics = engine->serve(source, serve);

  // One last snapshot after the drain, so the coordinator's federated
  // counters settle at the partition's final totals before finals begin
  // (metrics frames are rejected once the finals sequence starts).
  send_metrics();

  // The slice has drained: ship the id-sorted finals in bounded chunks,
  // then the summary that seals the stream.
  for (std::size_t off = 0; off < finals.size();
       off += kControlFinalsChunk) {
    const std::size_t count =
        std::min(kControlFinalsChunk, finals.size() - off);
    encode_control_finals(finals.data() + off, count, ctl);
    send_buffer(control, ctl);
  }
  ControlSummary summary;
  summary.objects = metrics.objects;
  summary.events = metrics.events;
  summary.num_local = metrics.num_local;
  summary.num_transfers = metrics.num_transfers;
  summary.online_cost = metrics.online_cost;
  summary.lower_bound = metrics.lower_bound;
  encode_control_summary(summary, ctl);
  send_buffer(control, ctl);
  control.shutdown_write();
  REPL_LOG_INFO("cluster", "worker finished partition="
                               << options.partition_id
                               << " events=" << metrics.events
                               << " objects=" << metrics.objects);
  return metrics;
}

}  // namespace repl
