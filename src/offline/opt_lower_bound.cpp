#include "offline/opt_lower_bound.hpp"

#include <cmath>
#include <limits>

#include "util/check.hpp"

namespace repl {

double opt_lower_bound(const SystemConfig& config, const Trace& trace) {
  config.validate();
  REPL_REQUIRE(trace.num_servers() == config.num_servers);
  for (double r : config.storage_rates) {
    REPL_REQUIRE_MSG(r == 1.0,
                     "OPTL is derived for uniform unit storage rates");
  }
  const double lambda = config.transfer_cost;
  double bound = 0.0;
  double prev_global = 0.0;  // dummy r0 at time 0
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const double gap_same =
        interarrival_to_prev(trace, i, config.initial_server);
    bound += (gap_same > lambda) ? lambda : gap_same;
    const double gap_global = trace[i].time - prev_global;
    if (gap_global > lambda) bound += gap_global - lambda;
    prev_global = trace[i].time;
  }
  return bound;
}

namespace {

/// Validates before the initializer list sizes the per-server vector
/// from config.num_servers.
const SystemConfig& validated(const SystemConfig& config) {
  config.validate();
  return config;
}

}  // namespace

StreamingLowerBound::StreamingLowerBound(const SystemConfig& config)
    : lambda_(validated(config).transfer_cost),
      last_at_server_(static_cast<std::size_t>(config.num_servers),
                      -std::numeric_limits<double>::infinity()) {
  for (double r : config.storage_rates) {
    REPL_REQUIRE_MSG(r == 1.0,
                     "OPTL is derived for uniform unit storage rates");
  }
  last_at_server_[static_cast<std::size_t>(config.initial_server)] = 0.0;
}

void StreamingLowerBound::save_state(StateWriter& out) const {
  out.f64(lambda_);
  out.f64(prev_global_);
  out.f64(bound_);
  out.u64(static_cast<std::uint64_t>(last_at_server_.size()));
  for (const double t : last_at_server_) out.f64(t);
}

void StreamingLowerBound::load_state(StateReader& in) {
  if (in.f64() != lambda_) in.fail("lower bound lambda mismatch");
  prev_global_ = in.f64();
  bound_ = in.f64();
  if (in.u64() != last_at_server_.size()) {
    in.fail("lower bound server count mismatch");
  }
  for (double& t : last_at_server_) t = in.f64();
}

void StreamingLowerBound::step(int server, double time) {
  REPL_REQUIRE(server >= 0 &&
               static_cast<std::size_t>(server) < last_at_server_.size());
  const auto s = static_cast<std::size_t>(server);
  const double gap_same = time - last_at_server_[s];
  bound_ += (gap_same > lambda_) ? lambda_ : gap_same;
  const double gap_global = time - prev_global_;
  if (gap_global > lambda_) bound_ += gap_global - lambda_;
  prev_global_ = time;
  last_at_server_[s] = time;
}

}  // namespace repl
