#include "adversary/lower_bound_adversary.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.hpp"

namespace repl {

namespace {
constexpr int kS1 = 0;
constexpr int kS2 = 1;
constexpr Prediction kBeyond{false};
}  // namespace

std::size_t AdversaryResult::count(AdversaryKind kind) const {
  return static_cast<std::size_t>(
      std::count(kinds.begin(), kinds.end(), kind));
}

LowerBoundAdversary::LowerBoundAdversary(Options options)
    : options_(options) {
  REPL_REQUIRE(options.lambda > 0.0);
  REPL_REQUIRE(options.epsilon > 0.0 && options.epsilon < options.lambda);
  REPL_REQUIRE(options.num_requests >= 1);
}

SystemConfig LowerBoundAdversary::config() const {
  SystemConfig cfg;
  cfg.num_servers = 2;
  cfg.transfer_cost = options_.lambda;
  cfg.initial_server = kS1;
  return cfg;
}

AdversaryResult LowerBoundAdversary::generate(
    const ReplicationPolicy& prototype) const {
  const double lambda = options_.lambda;
  const double eps = options_.epsilon;
  const SystemConfig cfg = config();

  NullEventSink sink;
  PolicyPtr live = prototype.clone();
  live->reset(cfg, kBeyond, sink);

  std::vector<Request> requests;
  std::vector<AdversaryKind> kinds;
  requests.reserve(static_cast<std::size_t>(options_.num_requests));

  // r1 arrives at s2 right after time 0, forcing a transfer under any
  // strategy (only s1 holds the object at time 0).
  live->advance_to(eps, sink);
  live->on_request(kS2, eps, kBeyond, sink);
  requests.push_back(Request{eps, kS2});
  kinds.push_back(AdversaryKind::kK1b);

  double last_at[2] = {0.0, eps};  // dummy r0 at s1, r1 at s2

  while (static_cast<int>(requests.size()) < options_.num_requests) {
    const Request prev = requests.back();
    const int s = (prev.server == kS1) ? kS2 : kS1;  // the other server
    const double t_k = last_at[s];
    const double t_prime = std::max(prev.time + eps, t_k + lambda + eps);

    // Peek: does s hold a copy at t'?
    PolicyPtr probe = live->clone();
    probe->advance_to(t_prime, sink);

    double next_time;
    int next_server;
    AdversaryKind kind;
    if (!probe->holds(s)) {
      next_time = t_prime;
      next_server = s;
      kind = (t_prime == t_k + lambda + eps) ? AdversaryKind::kK1a
                                             : AdversaryKind::kK1b;
    } else {
      // Monitor for a drop of s's copy during (t', prev.time + λ).
      const double window_end = prev.time + lambda;
      double drop_time = std::numeric_limits<double>::infinity();
      for (;;) {
        const double transition = probe->next_transition_time();
        if (!(transition < window_end)) break;
        // Step just past the transition (strict advance semantics).
        probe->advance_to(transition + eps * 0.125, sink);
        if (!probe->holds(s)) {
          drop_time = transition;
          break;
        }
      }
      if (std::isfinite(drop_time)) {
        next_time = drop_time + eps;
        next_server = s;
        kind = AdversaryKind::kK1c;
      } else {
        next_time = prev.time + lambda + eps;
        next_server = prev.server;
        kind = AdversaryKind::kK2;
      }
    }

    REPL_CHECK_MSG(next_time > prev.time,
                   "adversary generated a non-increasing request time");
    // All same-server gaps must exceed λ so the fixed "beyond" prediction
    // stream is correct (the lower bound concerns consistency).
    REPL_CHECK_MSG(next_time - last_at[next_server] > lambda,
                   "adversary generated a same-server gap <= lambda");

    live->advance_to(next_time, sink);
    live->on_request(next_server, next_time, kBeyond, sink);
    requests.push_back(Request{next_time, next_server});
    kinds.push_back(kind);
    last_at[next_server] = next_time;
  }

  AdversaryResult result{Trace(2, std::move(requests)), std::move(kinds)};
  return result;
}

}  // namespace repl
