// ASCII timeline rendering of a simulation: one row per server showing
// when copies were held (and when they were special), with request
// markers. Invaluable for eyeballing policy behaviour in examples and
// bug reports; the format is stable enough to assert against in tests.
//
//   s0 |=========*****x............|
//   s1 |..........o===============|
//
//   '=' regular copy   '*' special copy   '.' no copy
//   'o' local serve    'x' request served by transfer
#pragma once

#include <string>

#include "core/simulator.hpp"
#include "trace/trace.hpp"

namespace repl {

struct TimelineOptions {
  int width = 72;          // characters across [0, horizon]
  bool show_axis = true;   // print a time axis footer
};

std::string render_timeline(const SimulationResult& result,
                            const Trace& trace,
                            TimelineOptions options = TimelineOptions());

}  // namespace repl
