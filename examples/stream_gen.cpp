// Standalone workload-synthesis CLI: streams an interleaved multi-object
// event log straight to disk in either wire format, or transcodes an
// existing log between formats — the producer-side tool of the codec
// subsystem (the consumer side is engine_serve / bench_engine).
//
//   ./build/examples/stream_gen --out=w.evlog --objects=100000
//       --events=10000000 --log-format=compressed
//   ./build/examples/stream_gen --transcode=w.evlog --out=w_raw.evlog
//       --log-format=raw
//
// The synthesized event sequence depends only on the workload flags and
// --seed, never on --log-format: the same flags produce logs that decode
// to identical events in either format (the tool prints both sizes'
// bytes/event so the trade is visible).
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <string>

#include "trace/event_log.hpp"
#include "trace/stream_gen.hpp"
#include "util/cli.hpp"

using namespace repl;

int main(int argc, char** argv) {
  CliParser cli("stream_gen",
                "synthesize (or transcode) interleaved multi-object event "
                "logs");
  cli.add_flag("out", "", "destination log path (required)");
  cli.add_flag("log-format", "raw", "output wire format: raw|compressed");
  cli.add_flag("transcode", "",
               "re-encode this existing log into --out instead of "
               "generating a workload");
  cli.add_flag("objects", "50000", "objects to synthesize");
  cli.add_flag("events", "1000000", "events to synthesize (0: use --horizon)");
  cli.add_flag("horizon", "0", "stop at the first arrival past this time "
               "(0: use --events)");
  cli.add_flag("servers", "10", "servers in the system");
  cli.add_flag("arrivals", "poisson",
               "arrival process: poisson|pareto|diurnal");
  cli.add_flag("rate", "0",
               "aggregate arrival rate (0: objects/64, the engine demo's "
               "default density)");
  cli.add_flag("object-zipf", "1", "object popularity skew s");
  cli.add_flag("server-zipf", "1", "server assignment skew s (0: uniform)");
  cli.add_flag("pareto-shape", "1.5", "Pareto gap shape");
  cli.add_flag("diurnal-amplitude", "0.8", "diurnal modulation in [0,1)");
  cli.add_flag("diurnal-period", "86400", "diurnal period");
  cli.add_flag("seed", "1", "workload seed");
  if (!cli.parse(argc, argv)) return 0;

  const std::string out = cli.get_string("out");
  if (out.empty()) {
    std::cerr << "error: --out is required\n";
    return EXIT_FAILURE;
  }
  EventLogFormat format = EventLogFormat::kRaw;
  try {
    format = parse_event_log_format(cli.get_string("log-format"));
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return EXIT_FAILURE;
  }

  try {
    const std::string transcode = cli.get_string("transcode");
    std::uint64_t events = 0;
    if (!transcode.empty()) {
      events = event_log_transcode(transcode, out, format);
      std::cout << "transcoded " << events << " events: " << transcode
                << " (" << std::filesystem::file_size(transcode)
                << " bytes) -> " << out << " ("
                << std::filesystem::file_size(out) << " bytes, "
                << event_log_format_name(format) << ")\n";
    } else {
      StreamWorkloadConfig workload;
      workload.num_objects = cli.get_size_t("objects", 1, 100000000);
      workload.num_servers =
          static_cast<int>(cli.get_size_t("servers", 1, 4096));
      workload.max_events = cli.get_uint64("events");
      workload.horizon = cli.get_double("horizon");
      workload.object_zipf_s = cli.get_double("object-zipf");
      workload.server_zipf_s = cli.get_double("server-zipf");
      workload.pareto_shape = cli.get_double("pareto-shape");
      workload.diurnal_amplitude = cli.get_double("diurnal-amplitude");
      workload.diurnal_period = cli.get_double("diurnal-period");
      workload.rate = cli.get_double("rate");
      if (workload.rate <= 0.0) {
        workload.rate = static_cast<double>(workload.num_objects) / 64.0;
      }
      const std::string arrivals = cli.get_string("arrivals");
      if (arrivals == "pareto") {
        workload.arrivals = StreamWorkloadConfig::Arrivals::kPareto;
      } else if (arrivals == "diurnal") {
        workload.arrivals = StreamWorkloadConfig::Arrivals::kDiurnal;
      } else if (arrivals != "poisson") {
        std::cerr << "error: unknown --arrivals " << arrivals << "\n";
        return EXIT_FAILURE;
      }
      events = generate_event_log(workload, cli.get_uint64("seed"), out,
                                  format);
      std::cout << "generated " << events << " " << arrivals
                << " events over " << workload.num_objects
                << " objects -> " << out << "\n";
    }
    if (events > 0) {
      const auto bytes = std::filesystem::file_size(out);
      std::cout << event_log_format_name(format) << " format: " << bytes
                << " bytes, "
                << static_cast<double>(bytes) / static_cast<double>(events)
                << " bytes/event\n";
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return EXIT_FAILURE;
  }
  return EXIT_SUCCESS;
}
