// Minimal HTTP/1.x exporter for a MetricsRegistry.
//
// One accept thread, one short-lived handler per connection (requests are
// tiny and scrapers are few — thread-per-request keeps it simple and
// testable). Routes:
//
//   GET /metrics        Prometheus text by default; JSON when the client
//                       sends `Accept: application/json`.
//   GET /metrics.json   always JSON.
//   GET /healthz        small JSON health document.
//
// Query strings are stripped before routing, HTTP/1.0 and version-less
// request lines are accepted, and every response — including 400/404/405
// — carries a correct `Content-Length`. Connections are persistent when
// the client asks (HTTP/1.1 default; `Connection: keep-alive` on 1.0),
// bounded at MetricsHttpOptions::max_requests_per_connection requests,
// so a polling scraper reuses one socket instead of re-dialing per
// scrape; everything else gets `Connection: close`.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "net/socket.hpp"
#include "obs/metrics.hpp"
#include "util/json.hpp"

namespace repl::obs {

/// Decomposed HTTP request head. Exposed for unit tests.
struct HttpRequest {
  bool valid = false;      ///< request line parsed
  std::string method;      ///< "GET"
  std::string path;        ///< "/metrics" (query stripped)
  std::string query;       ///< "x=1" (no leading '?')
  std::string version;     ///< "HTTP/1.1"; empty for version-less lines
  /// Lowercased header names paired with trimmed values.
  std::vector<std::pair<std::string, std::string>> headers;

  /// First value of a (lowercased) header name, or "" when absent.
  std::string header(const std::string& name) const;
};

/// Parses a raw request head (through the blank line; body ignored).
HttpRequest parse_http_request(const std::string& raw);

/// Whether the request asks for a persistent connection: HTTP/1.1
/// unless `Connection: close`; HTTP/1.0 only with
/// `Connection: keep-alive`; version-less and invalid requests never.
bool http_keepalive_requested(const HttpRequest& request);

/// Serializes a full response with Content-Length and a Connection
/// header (`keep-alive` or `close`).
std::string http_response(int status, const std::string& content_type,
                          const std::string& body, bool keep_alive = false);

struct MetricsHttpOptions {
  std::string host = "127.0.0.1";
  int port = 0;  ///< 0 = kernel-assigned; read back via port().
  /// Requests served per connection before the server closes it (the
  /// keep-alive bound; prevents one scraper pinning a handler thread
  /// forever).
  std::size_t max_requests_per_connection = 100;
};

class MetricsHttpServer {
 public:
  MetricsHttpServer(MetricsRegistry& registry, MetricsHttpOptions options);
  ~MetricsHttpServer();

  MetricsHttpServer(const MetricsHttpServer&) = delete;
  MetricsHttpServer& operator=(const MetricsHttpServer&) = delete;

  /// Extra top-level members appended to the JSON exposition document
  /// (e.g. per-connection detail). Set before start().
  void set_json_extra(std::function<void(JsonWriter&)> extra);

  /// Extra members appended to the /healthz document. Set before start().
  void set_health_extra(std::function<void(JsonWriter&)> extra);

  /// Extra samples merged into every /metrics exposition alongside the
  /// registry's own (the federation path: a cluster coordinator injects
  /// partition-labeled worker samples here). Called per scrape; must be
  /// thread-safe. Set before start().
  void set_extra_samples(std::function<std::vector<Sample>()> extra);

  void start();
  void stop();

  int port() const { return port_; }

  /// Pure request -> response routing, exposed for tests. `keep_alive`
  /// selects the Connection header; the server passes its keep-alive
  /// decision, tests may pass either.
  std::string respond(const HttpRequest& request, bool keep_alive = false);

 private:
  void serve_loop();
  void handle_connection(Socket client);
  std::vector<Sample> collect_samples();

  MetricsRegistry& registry_;
  MetricsHttpOptions options_;
  std::function<void(JsonWriter&)> json_extra_;
  std::function<void(JsonWriter&)> health_extra_;
  std::function<std::vector<Sample>()> extra_samples_;

  std::unique_ptr<Listener> listener_;
  std::thread thread_;
  bool started_ = false;
  int port_ = -1;
};

}  // namespace repl::obs
