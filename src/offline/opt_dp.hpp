// Exact optimal offline cost via dynamic programming over copy-holder
// sets — the normalizing denominator of every experiment (the role played
// by the DP of Wang et al. 2018 in the paper's evaluation).
//
// Model reduction (Propositions 3–6 of the paper + standard exchange
// arguments, see DESIGN.md §3): there is an optimal strategy in which
//  * every transfer happens at a request instant,
//  * copies are created only at request instants (at the requester for
//    free alongside the serving transfer, or at any other server for an
//    extra transfer cost λ),
//  * copies are dropped only at request instants,
//  * hence the copy configuration is constant between consecutive
//    requests.
//
// State: the set S of copy holders during a gap. Transition at request
// r_i (server a, preceding gap g):
//
//   dp'[S'] = min_S [ dp[S] + g·w(S) + (a ∈ S ? 0 : λ) + λ·|S' \ (S ∪ {a})| ]
//
// over non-empty S', where w(S) is the summed storage rate of S. The
// transition is evaluated in O(2^k·k) per request with two bitwise
// passes: a superset-min (SOS) transform followed by a "buy a bit for λ"
// relaxation. k counts only *active* servers (those issuing requests,
// plus the initial holder), so a 10-server trace costs 1024·10 words per
// request regardless of the physical server count.
//
// The "buy" term makes the DP exact for distinct per-server storage
// rates too (holding coverage at a cheap idle server can beat extending
// an expensive copy); under uniform rates it never fires but costs
// nothing in correctness.
#pragma once

#include <cstdint>
#include <vector>

#include "core/types.hpp"
#include "trace/trace.hpp"

namespace repl {

/// An optimal offline strategy in the reduced space: `states[i]` is the
/// set of copy holders (bitmask over `active_servers`) during the gap
/// ending at request i; `final_state` the holders at the final request.
struct OfflinePlan {
  double cost = 0.0;
  std::vector<int> active_servers;      // bit -> server id
  std::vector<std::uint32_t> states;    // one per request (gap before it)
  std::uint32_t final_state = 0;        // holders after the last request
};

class OptimalDpSolver {
 public:
  struct Options {
    /// Hard cap on active servers (memory/time is Θ(m·2^k·k)).
    int max_active_servers = 20;
  };

  explicit OptimalDpSolver(SystemConfig config)
      : OptimalDpSolver(std::move(config), Options()) {}
  OptimalDpSolver(SystemConfig config, Options options);

  /// Optimal offline cost of serving `trace` (storage up to the final
  /// request + λ per transfer). An empty trace costs 0.
  double solve(const Trace& trace) const;

  /// As solve(), but also reconstructs one optimal plan. Uses the naive
  /// O(4^k)-per-request transition with parent tracking — intended for
  /// small instances (k ≤ 12 or so).
  OfflinePlan solve_with_plan(const Trace& trace) const;

 private:
  SystemConfig config_;
  Options options_;
};

/// One-shot convenience wrapper.
double optimal_offline_cost(const SystemConfig& config, const Trace& trace);

/// Recomputes the cost of a plan from its states (storage per gap +
/// serve/creation transfers) and checks feasibility; used to validate
/// solver output in tests. Throws on an infeasible plan.
double evaluate_plan(const SystemConfig& config, const Trace& trace,
                     const OfflinePlan& plan);

}  // namespace repl
