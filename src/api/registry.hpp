// The component registry: string-keyed, parameterized factories for
// every replication policy and predictor in the library.
//
// A ComponentSpec (api/spec.hpp) names a component and its parameters;
// the registry validates the spec against the component's declared
// parameter schema (unknown/ill-typed parameters fail with a precise
// diagnostic), canonicalizes it (defaults filled in, parameters sorted
// by key, values normalized so semantically equal specs print equal
// strings), and constructs the component. Construction happens against a
// BuildContext carrying everything a factory may need: the SystemConfig
// (server count, λ), a deterministic seed for randomized components, and
// — for offline experiments only — the driving trace.
//
// Causality: components flagged `requires_trace` (the clairvoyant
// oracle/adversarial/noisy predictors and the offline-plan replay
// policy) can only be built when the context supplies a trace. The
// engine facade (api/experiment.hpp) rejects such specs up front with a
// spec-naming diagnostic, because the streaming engine is online — there
// is no trace to peek at.
//
// The registry is populated with every concrete component in src/ at
// first use (thread-safe magic static); drivers may register additional
// components at startup, before concurrent use begins.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "api/spec.hpp"
#include "core/policy.hpp"
#include "core/types.hpp"
#include "predictor/predictor.hpp"

namespace repl {

class Trace;

enum class ComponentKind { kPolicy, kPredictor };

/// Returns "policy" or "predictor" (for diagnostics).
const char* component_kind_name(ComponentKind kind);

enum class ParamType { kDouble, kUint, kBool };

struct ParamInfo {
  std::string key;
  ParamType type = ParamType::kDouble;
  /// Canonical default, substituted when the spec omits the parameter.
  std::string default_value;
  std::string help;
  /// Accepted numeric range (kDouble/kUint), mirroring the component
  /// constructor's own REQUIREs — so an out-of-range value fails at the
  /// spec boundary with a parameter-naming diagnostic instead of deep
  /// inside a serve. Non-finite doubles are always rejected.
  double min_value = -std::numeric_limits<double>::infinity();
  double max_value = std::numeric_limits<double>::infinity();
  bool min_exclusive = false;
};

struct ComponentInfo {
  std::string name;
  ComponentKind kind = ComponentKind::kPolicy;
  std::string summary;
  std::vector<ParamInfo> params;
  /// Nested component arguments (ensemble experts). Children are
  /// validated against the same kind's table.
  std::size_t min_children = 0;
  std::size_t max_children = 0;
  /// Clairvoyant: construction needs the full trace, so the component is
  /// rejected for online (engine) use.
  bool requires_trace = false;
  /// A representative runnable spec, shown by --list flags and used by
  /// the smoke tests; defaults to the bare name when empty.
  std::string example;
};

/// Everything a factory gets to build one component instance.
struct BuildContext {
  SystemConfig config;
  /// Deterministic per-instance seed (e.g. the engine's per-object seed
  /// stream); randomized components must draw from it only.
  std::uint64_t seed = 0;
  /// The driving trace for clairvoyant components; null in online use.
  const Trace* trace = nullptr;
};

/// Typed accessor over a *validated* spec: falls back to the declared
/// default when the parameter was omitted.
class SpecParams {
 public:
  SpecParams(const ComponentSpec& spec, const ComponentInfo& info)
      : spec_(&spec), info_(&info) {}

  double get_double(const std::string& key) const;
  std::uint64_t get_uint(const std::string& key) const;
  bool get_bool(const std::string& key) const;

 private:
  const std::string& raw(const std::string& key) const;

  const ComponentSpec* spec_;
  const ComponentInfo* info_;
};

class ComponentRegistry {
 public:
  using PolicyBuilder =
      std::function<PolicyPtr(const ComponentSpec&, const BuildContext&)>;
  using PredictorBuilder =
      std::function<PredictorPtr(const ComponentSpec&, const BuildContext&)>;

  /// The process-wide registry, populated with every built-in component.
  static ComponentRegistry& instance();

  /// Registration: `info.name` must be unused within its kind. Builders
  /// receive a validated spec and may assume declared parameters parse.
  void register_policy(ComponentInfo info, PolicyBuilder build);
  void register_predictor(ComponentInfo info, PredictorBuilder build);

  /// Lookup; null when unknown.
  const ComponentInfo* find(ComponentKind kind,
                            const std::string& name) const;
  /// As find(), but throws SpecError naming the registered components.
  const ComponentInfo& info(ComponentKind kind,
                            const std::string& name) const;
  /// All registered components of `kind`, sorted by name.
  std::vector<const ComponentInfo*> components(ComponentKind kind) const;

  /// Validates names, parameters (known keys, declared types), and child
  /// counts, recursively. Throws SpecError with the offending component
  /// and key named.
  void validate(ComponentKind kind, const ComponentSpec& spec) const;

  /// True when the component, or any nested child, is clairvoyant.
  bool requires_trace(ComponentKind kind, const ComponentSpec& spec) const;

  /// Validates, then rewrites to the canonical form: every declared
  /// parameter present (defaults filled in), parameters sorted by key,
  /// values normalized (shortest round-trip doubles, true/false bools,
  /// plain decimal uints), children canonicalized recursively. Two specs
  /// are semantically equal iff their canonical prints are equal.
  ComponentSpec canonicalize(ComponentKind kind,
                             const ComponentSpec& spec) const;
  /// parse → canonicalize → print.
  std::string canonical_string(ComponentKind kind,
                               const std::string& spec_text) const;

  /// Validates and constructs. Clairvoyant components throw SpecError
  /// when `ctx.trace` is null.
  PolicyPtr build_policy(const ComponentSpec& spec,
                         const BuildContext& ctx) const;
  PolicyPtr build_policy(const std::string& spec_text,
                         const BuildContext& ctx) const;
  PredictorPtr build_predictor(const ComponentSpec& spec,
                               const BuildContext& ctx) const;
  PredictorPtr build_predictor(const std::string& spec_text,
                               const BuildContext& ctx) const;

 private:
  struct Entry {
    ComponentInfo info;
    PolicyBuilder build_policy;
    PredictorBuilder build_predictor;
  };

  const std::map<std::string, Entry>& table(ComponentKind kind) const;
  std::map<std::string, Entry>& table(ComponentKind kind);
  const Entry& entry(ComponentKind kind, const std::string& name) const;

  std::map<std::string, Entry> policies_;
  std::map<std::string, Entry> predictors_;
};

/// Normalizes one scalar value string per its declared type; throws
/// SpecError (naming `component` and `key`) when the value does not
/// parse. Exposed for tests.
std::string normalize_param_value(const std::string& component,
                                  const ParamInfo& param,
                                  const std::string& value);

}  // namespace repl

// ---------------------------------------------------------------------
// Out-of-tree self-registration
// ---------------------------------------------------------------------
//
// An external component needs exactly one new .cpp: define the class,
// then register it at namespace scope with one of these macros — the
// registration runs before main() via a file-local static, so the
// component is immediately reachable from every spec-driven driver
// (`engine_serve --policy my_policy(...)`, checkpoints record and
// cross-check its canonical spec, etc.). No registry of registrations
// to edit, nothing else to recompile.
//
//   REPL_REGISTER_POLICY(my_policy, [] {
//     repl::ComponentInfo info;
//     info.name = "my_policy";
//     info.summary = "…";
//     return info;
//   }(), [](const repl::ComponentSpec&, const repl::BuildContext&)
//       -> repl::PolicyPtr { return std::make_unique<MyPolicy>(); });
//
// `token` only names the file-local static (one registration per token
// per translation unit). Link the .cpp into the executable target
// itself (or an OBJECT library): a classic static archive may drop a TU
// nothing references, and then the initializer never runs.
//
// Thread safety: registration happens during static initialization,
// before threads exist; ComponentRegistry::instance() itself is a
// thread-safe magic static, so builtins are always registered first.

#define REPL_REGISTER_POLICY(token, ...)                                     \
  [[maybe_unused]] static const bool repl_registered_policy_##token =        \
      (::repl::ComponentRegistry::instance().register_policy(__VA_ARGS__),   \
       true)

#define REPL_REGISTER_PREDICTOR(token, ...)                                  \
  [[maybe_unused]] static const bool repl_registered_predictor_##token =     \
      (::repl::ComponentRegistry::instance().register_predictor(             \
           __VA_ARGS__),                                                     \
       true)
