#include "util/csv.hpp"

#include <fstream>
#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace repl {

namespace {

bool needs_quoting(const std::string& field) {
  return field.find_first_of(",\"\n\r") != std::string::npos;
}

}  // namespace

void write_csv_row(std::ostream& os, const CsvRow& row) {
  for (std::size_t i = 0; i < row.size(); ++i) {
    if (i) os << ',';
    const std::string& field = row[i];
    if (needs_quoting(field)) {
      os << '"';
      for (char c : field) {
        if (c == '"') os << "\"\"";
        else if (c != '\r') os << c;
      }
      os << '"';
    } else {
      os << field;
    }
  }
  os << '\n';
}

std::vector<CsvRow> parse_csv(const std::string& text) {
  std::vector<CsvRow> rows;
  CsvRow row;
  std::string field;
  bool in_quotes = false;
  bool field_started = false;

  auto end_field = [&] {
    row.push_back(std::move(field));
    field.clear();
    field_started = false;
  };
  auto end_row = [&] {
    end_field();
    rows.push_back(std::move(row));
    row.clear();
  };

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else if (c != '\r') {
        field.push_back(c);
      }
      continue;
    }
    switch (c) {
      case '"':
        in_quotes = true;
        field_started = true;
        break;
      case ',':
        end_field();
        field_started = true;  // next field exists even if empty
        break;
      case '\n':
        if (!field.empty() || field_started || !row.empty()) end_row();
        break;
      case '\r':
        break;
      default:
        field.push_back(c);
        field_started = true;
        break;
    }
  }
  if (in_quotes) throw std::invalid_argument("csv: unterminated quote");
  if (!field.empty() || field_started || !row.empty()) end_row();
  return rows;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open file for reading: " + path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

void write_file(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot open file for writing: " + path);
  out << contents;
  if (!out) throw std::runtime_error("write failed: " + path);
}

std::string format_double(double v) {
  std::ostringstream os;
  os.precision(std::numeric_limits<double>::max_digits10);
  os << v;
  return os.str();
}

NumericRow split_numeric_row(const std::string& line, std::size_t row_index,
                             const std::string& context,
                             const std::string& header_first_field,
                             const std::string& expected_desc,
                             std::size_t expected_fields, bool allow_header,
                             std::vector<std::string>& fields) {
  std::string text = line;
  if (!text.empty() && text.back() == '\r') text.pop_back();
  if (text.empty()) return NumericRow::kBlank;

  fields.clear();
  std::size_t start = 0;
  for (;;) {
    const std::size_t comma = text.find(',', start);
    if (comma == std::string::npos) {
      fields.push_back(text.substr(start));
      break;
    }
    fields.push_back(text.substr(start, comma - start));
    start = comma + 1;
  }
  if (allow_header && fields.front() == header_first_field) {
    return NumericRow::kHeader;
  }
  if (fields.size() != expected_fields) {
    throw std::invalid_argument(context + " row " +
                                std::to_string(row_index) + ": expected " +
                                expected_desc);
  }
  return NumericRow::kData;
}

double parse_double_field(const std::string& field) {
  std::size_t pos = 0;
  const double out = std::stod(field, &pos);
  if (pos != field.size()) throw std::invalid_argument(field);
  return out;
}

long long parse_int_field(const std::string& field) {
  std::size_t pos = 0;
  const long long out = std::stoll(field, &pos);
  if (pos != field.size()) throw std::invalid_argument(field);
  return out;
}

unsigned long long parse_uint64_field(const std::string& field) {
  // std::stoull silently wraps negative input, so reject the sign first.
  if (field.find('-') != std::string::npos) {
    throw std::invalid_argument(field);
  }
  std::size_t pos = 0;
  const unsigned long long out = std::stoull(field, &pos);
  if (pos != field.size()) throw std::invalid_argument(field);
  return out;
}

}  // namespace repl
