// Delta codec for monotone timestamp streams.
//
// Event times are IEEE-754 doubles that only move forward, and for
// positive doubles the binary64 bit pattern is monotone in the value —
// so consecutive timestamps have bit patterns that differ by a small
// integer whenever the stream is dense. The encoder emits the zigzag
// varint of that bit-pattern difference (mod 2^64), which is:
//
//   * exactly lossless for every double, including NaN/inf payload bits
//     (the difference wraps, zigzag keeps it bounded, decoding re-wraps);
//   * 1 byte for repeated timestamps (difference 0);
//   * a handful of bytes for dense streams, vs. 8 for the raw pattern.
//
// Encoders and decoders are stateful (previous bit pattern) and reset at
// block boundaries, so every block of a framed stream decodes
// independently — the property that keeps skip-by-blocks possible.
#pragma once

#include <bit>
#include <cstdint>
#include <vector>

#include "codec/varint.hpp"

namespace repl {

class TimeDeltaEncoder {
 public:
  /// Forgets the previous timestamp (start of a new block).
  void reset() { prev_bits_ = 0; }

  /// Appends the delta-encoded `t` to `out`.
  void encode(double t, std::vector<unsigned char>& out) {
    const std::uint64_t bits = std::bit_cast<std::uint64_t>(t);
    put_uvarint(out, zigzag_encode(static_cast<std::int64_t>(
                         bits - prev_bits_)));  // wraps mod 2^64 by design
    prev_bits_ = bits;
  }

 private:
  std::uint64_t prev_bits_ = 0;
};

class TimeDeltaDecoder {
 public:
  void reset() { prev_bits_ = 0; }

  /// Decodes one timestamp from [*p, end), advancing *p. Returns false
  /// (leaving `t` untouched) on truncated or overlong varint input.
  bool decode(const unsigned char** p, const unsigned char* end, double& t) {
    std::uint64_t zz = 0;
    const std::size_t used = get_uvarint(*p, end, zz);
    if (used == 0) return false;
    *p += used;
    prev_bits_ += static_cast<std::uint64_t>(zigzag_decode(zz));
    t = std::bit_cast<double>(prev_bits_);
    return true;
  }

 private:
  std::uint64_t prev_bits_ = 0;
};

}  // namespace repl
