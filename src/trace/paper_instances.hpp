// Builders for the constructed instances the paper uses in its analysis:
//
//  * Figure 5 — the tight robustness example (ratio → 1 + 1/α),
//  * Figure 6 — the tight consistency example (ratio → (5+α)/3),
//  * Figure 9 — the counterexample to Wang et al. (2021)'s claimed
//    2-competitiveness (ratio → 5/2).
//
// Each builder comes with the closed-form optimal offline cost stated in
// the paper (under this library's cost convention: transfers + storage
// integrated up to the final request). These closed forms double as exact
// oracles for the offline DP solver in tests.
//
// Server convention: server 0 is the paper's s1 (initial copy holder,
// dummy request r0 at time 0), server 1 is s2.
#pragma once

#include "trace/trace.hpp"

namespace repl {

/// Figure 5: requests alternate between s2 and s1 (first real request at
/// s2 at time eps), consecutive requests at the same server are
/// alpha*lambda + eps apart. With always-"beyond" predictions, Algorithm 1
/// serves every request by a transfer; the optimum keeps both copies.
/// `m` = number of real requests (r1..rm), m >= 1. Requires
/// 0 < eps < alpha*lambda.
Trace make_figure5_trace(double alpha, double lambda, int m, double eps);

/// Exact optimal offline cost of the Figure 5 instance:
/// lambda + (m-1)*(alpha*lambda + eps).
double figure5_optimal_cost(double alpha, double lambda, int m, double eps);

/// Figure 6: one cycle is r1 at s_other at T+lambda, r2 at s_home at
/// T+lambda+eps, r3 at s_other at T+2*lambda+eps; then roles swap and the
/// next cycle starts at T' = T+2*lambda+eps. All inter-request times at a
/// server exceed lambda, so correct predictions are all "beyond".
/// Requires 0 < eps < alpha*lambda for the intended online behaviour
/// (callers pick eps accordingly; the trace itself only needs eps > 0).
Trace make_figure6_trace(double lambda, double eps, int cycles);

/// Exact optimal offline cost of the single-cycle Figure 6 instance:
/// 3*lambda + 2*eps. (For multiple cycles the paper only states the
/// asymptotic ratio; use the DP for exact values.)
double figure6_single_cycle_optimal_cost(double lambda, double eps);

/// Figure 9: all requests after the dummy arise at s2 with consecutive
/// gaps 2*lambda + eps; the first (r2 in the paper's numbering) arises at
/// time eps. `m` = the paper's m (total requests including r1 = the dummy
/// at s1); the returned trace holds the m-1 requests at s2.
/// Requires m >= 2.
Trace make_figure9_trace(double lambda, double eps, int m);

/// Exact optimal offline cost of the Figure 9 instance:
/// (m-2)*(2*lambda + eps) + lambda + eps.
double figure9_optimal_cost(double lambda, double eps, int m);

}  // namespace repl
