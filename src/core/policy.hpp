// The replication policy interface.
//
// A policy is an event-driven automaton over the copy configuration. The
// driver (Simulator, or the Section-9 adversary) interacts with it via:
//
//   reset(cfg, pred0, sink)       — place the initial copy at
//                                   cfg.initial_server at time 0; `pred0`
//                                   is the prediction for the dummy
//                                   request r0;
//   advance_to(t, sink)           — process all spontaneous transitions
//                                   (copy expiries) with time strictly
//                                   less than t, in time order (ties by
//                                   server index);
//   on_request(server, t, pred)   — serve a request; `pred` forecasts the
//                                   *next* inter-request time at `server`;
//   next_transition_time()        — earliest pending spontaneous
//                                   transition (+inf if none);
//   holds(server) / copy_count()  — introspection of the copy set.
//
// Time-tie conventions (see DESIGN.md §2): an intended expiry at exactly
// time t does not fire before a request at time t — copies are valid
// through their expiry instant inclusive — so drivers always call
// advance_to(t) (strict) before on_request(t).
//
// Policies must be clone()-able: the lower-bound adversary forks the
// policy to peek at its future copy-holding behaviour, and the adapted
// algorithm's tests compare forked trajectories.
#pragma once

#include <memory>
#include <string>

#include "core/types.hpp"
#include "predictor/predictor.hpp"

namespace repl {

class ReplicationPolicy {
 public:
  virtual ~ReplicationPolicy() = default;

  virtual void reset(const SystemConfig& config, const Prediction& pred0,
                     EventSink& sink) = 0;

  virtual void advance_to(double time, EventSink& sink) = 0;

  virtual ServeAction on_request(int server, double time,
                                 const Prediction& pred,
                                 EventSink& sink) = 0;

  /// Earliest time (> the last processed instant) at which the copy set
  /// changes without a request arriving; +inf if the configuration is
  /// stable.
  virtual double next_transition_time() const = 0;

  virtual bool holds(int server) const = 0;
  virtual int copy_count() const = 0;

  virtual std::string name() const = 0;
  virtual std::unique_ptr<ReplicationPolicy> clone() const = 0;
};

using PolicyPtr = std::unique_ptr<ReplicationPolicy>;

}  // namespace repl
