// Invariant regression tests on adversarial generated traces: replay the
// Simulator's event log and independently re-verify the model invariants
// — at least one copy at all times, every transfer originates at a
// holder, and the Proposition-2 allocation identity — across bursty,
// tie-heavy, and skewed workloads under both faithful and fully wrong
// predictions.
#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/allocation.hpp"
#include "core/adaptive_drwp.hpp"
#include "core/drwp.hpp"
#include "core/simulator.hpp"
#include "predictor/noisy.hpp"
#include "predictor/oracle.hpp"
#include "test_util.hpp"
#include "trace/generators.hpp"

namespace repl {
namespace {

using testing::make_config;

/// At-least-one-copy: the union of copy segments must cover [0, horizon]
/// with multiplicity >= 1 (the final copy's segment ends at +inf).
void expect_full_coverage(const SimulationResult& result) {
  struct Edge {
    double time;
    int delta;
  };
  std::vector<Edge> edges;
  edges.reserve(result.segments.size() * 2);
  for (const CopySegment& segment : result.segments) {
    edges.push_back({segment.begin, +1});
    if (std::isfinite(segment.end)) edges.push_back({segment.end, -1});
  }
  // Copies are valid through their end instant inclusive: at a drop/create
  // tie instant the creation counts before the drop.
  std::sort(edges.begin(), edges.end(), [](const Edge& a, const Edge& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.delta > b.delta;
  });
  int active = 0;
  double last_time = 0.0;
  for (const Edge& edge : edges) {
    if (edge.time > last_time && edge.time <= result.horizon) {
      ASSERT_GE(active, 1) << "no copy during (" << last_time << ", "
                           << edge.time << ")";
    }
    active += edge.delta;
    last_time = edge.time;
  }
  ASSERT_GE(active, 1) << "no surviving copy after " << last_time;
}

/// Transfer-from-holder: the source of every transfer holds a copy at the
/// transfer instant (its segment covers the instant inclusively).
void expect_transfers_from_holders(const SimulationResult& result) {
  for (const TransferRecord& transfer : result.transfers) {
    const bool held = std::any_of(
        result.segments.begin(), result.segments.end(),
        [&](const CopySegment& segment) {
          return segment.server == transfer.src &&
                 segment.begin <= transfer.time &&
                 transfer.time <= segment.end;
        });
    EXPECT_TRUE(held) << "transfer " << transfer.src << "->" << transfer.dst
                      << " at " << transfer.time
                      << " does not originate at a copy holder";
  }
}

/// Proposition-2: per-request allocations sum to the adjusted online cost.
void expect_allocation_identity(const SimulationResult& result,
                                const Trace& trace) {
  const AllocationReport report = allocate_costs(result, trace);
  const double scale = std::max(1.0, report.adjusted_online_cost);
  EXPECT_NEAR(report.discrepancy() / scale, 0.0, 1e-9);
}

void check_all(const SystemConfig& config, const Trace& trace, double alpha,
               Predictor& predictor) {
  DrwpPolicy policy(alpha);
  const SimulationResult result =
      Simulator(config).run(policy, trace, predictor);
  expect_full_coverage(result);
  expect_transfers_from_holders(result);
  expect_allocation_identity(result, trace);
}

TEST(InvariantRegression, BurstyMmppTraces) {
  MmppConfig mmpp;
  mmpp.rate_low = 0.002;
  mmpp.rate_high = 2.0;
  mmpp.mean_low_duration = 2000.0;
  mmpp.mean_high_duration = 100.0;
  mmpp.horizon = 40000.0;
  for (std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    SCOPED_TRACE(seed);
    const Trace trace =
        generate_mmpp_trace(6, mmpp, ServerAssignment{}, seed);
    const SystemConfig config = make_config(6, 50.0);
    OraclePredictor oracle(trace);
    check_all(config, trace, 0.3, oracle);
    AccuracyPredictor always_wrong(trace, 0.0, seed);
    check_all(config, trace, 0.3, always_wrong);
  }
}

TEST(InvariantRegression, ExpiryRequestTieInstants) {
  // Periodic traces whose gaps land exactly on alpha*lambda and lambda —
  // the tie conventions (copies valid through their expiry instant) are
  // where off-by-one-event bugs live.
  const double lambda = 10.0;
  const double alpha = 0.5;
  for (double period : {alpha * lambda, lambda, lambda + 1e-9}) {
    SCOPED_TRACE(period);
    const Trace trace = generate_periodic_trace(
        3, {period, 1.5 * period, 2.0 * period}, {period, period / 3, 1.0},
        400.0);
    const SystemConfig config = make_config(3, lambda);
    OraclePredictor oracle(trace);
    check_all(config, trace, alpha, oracle);
    AccuracyPredictor always_wrong(trace, 0.0, 5);
    check_all(config, trace, alpha, always_wrong);
  }
}

TEST(InvariantRegression, SkewedPoissonAcrossAlphas) {
  const Trace trace = testing::random_trace(8, 0.2, 20000.0, 31);
  const SystemConfig config = make_config(8, 100.0);
  for (double alpha : {0.05, 0.5, 1.0}) {
    SCOPED_TRACE(alpha);
    OraclePredictor oracle(trace);
    check_all(config, trace, alpha, oracle);
    AccuracyPredictor coin(trace, 0.5, 17);
    check_all(config, trace, alpha, coin);
  }
}

TEST(InvariantRegression, AdaptivePolicyKeepsModelInvariants) {
  // The adaptive variant re-tunes alpha online; coverage and holder
  // invariants must survive the switches (allocation identity is
  // DRWP-specific and not asserted here).
  const Trace trace = testing::random_trace(6, 0.1, 30000.0, 41);
  const SystemConfig config = make_config(6, 60.0);
  AccuracyPredictor predictor(trace, 0.6, 9);
  AdaptiveDrwpPolicy policy(0.3, AdaptiveDrwpPolicy::Options{0.2, 50});
  const SimulationResult result =
      Simulator(config).run(policy, trace, predictor);
  expect_full_coverage(result);
  expect_transfers_from_holders(result);
}

TEST(InvariantRegression, DistinctStorageRatesKeepInvariants) {
  const Trace trace = testing::random_trace(4, 0.08, 20000.0, 51);
  SystemConfig config = make_config(4, 40.0);
  config.storage_rates = {1.0, 0.25, 4.0, 0.5};
  OraclePredictor oracle(trace);
  DrwpPolicy policy(0.4);
  const SimulationResult result =
      Simulator(config).run(policy, trace, oracle);
  expect_full_coverage(result);
  expect_transfers_from_holders(result);
}

}  // namespace
}  // namespace repl
