// Experiment E4 — Figure 6 of the paper: the tight consistency instance.
// All predictions are correct ("beyond"), yet Algorithm 1 cannot do
// better than (5+α)/3: the ratio approaches that bound as ε shrinks.
// Also prints the conventional (α=1) policy on the same instance for
// contrast, and the 3/2 lower-bound reference line.
#include <iostream>

#include "analysis/ratio.hpp"
#include "bench_util.hpp"
#include "core/drwp.hpp"
#include "offline/opt_dp.hpp"
#include "predictor/fixed.hpp"
#include "trace/paper_instances.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace repl;
  CliParser cli("bench_fig6_consistency",
                "Figure 6: ratio -> (5+alpha)/3 under perfect predictions");
  cli.add_flag("lambda", "100", "transfer cost");
  cli.add_flag("cycles", "20", "instance length in 3-request cycles");
  if (!cli.parse(argc, argv)) return 0;
  const double lambda = cli.get_double("lambda");
  const int cycles = static_cast<int>(cli.get_int("cycles"));

  bench::ShapeChecks checks;
  SystemConfig config;
  config.num_servers = 2;
  config.transfer_cost = lambda;

  Table table({"alpha", "eps/lambda", "ratio", "bound (5+a)/3"});
  for (double alpha : {0.1, 0.3, 0.5, 0.8, 1.0}) {
    double best = 0.0;
    for (double eps_frac : {1e-1, 1e-2, 1e-4}) {
      const double eps = std::min(alpha, 1.0) * lambda * eps_frac;
      const Trace trace = make_figure6_trace(lambda, eps, cycles);
      DrwpPolicy policy(alpha);
      FixedPredictor beyond = always_beyond_predictor();  // correct here
      const RatioReport report =
          evaluate_policy(config, policy, trace, beyond);
      table.add_row({Table::cell(alpha, 2), Table::cell(eps_frac, 5),
                     Table::cell(report.ratio, 5),
                     Table::cell(consistency_bound(alpha), 5)});
      best = std::max(best, report.ratio);
      checks.expect(report.ratio <= consistency_bound(alpha) + 1e-9,
                    "consistency bound holds at alpha=" +
                        Table::cell(alpha, 2) + " eps_frac=" +
                        Table::cell(eps_frac, 5));
    }
    checks.expect(best > consistency_bound(alpha) * 0.98,
                  "ratio converges to (5+alpha)/3 at alpha=" +
                      Table::cell(alpha, 2) + " (reached " +
                      Table::cell(best, 4) + ")");
    checks.expect(best > 1.5 - 1e-9,
                  "ratio respects the Section-9 lower bound 3/2 at alpha=" +
                      Table::cell(alpha, 2));
  }
  std::cout << table.str() << "\n";
  std::cout << "reference: any deterministic learning-augmented algorithm "
               "has consistency >= 3/2 (Section 9).\n";
  return checks.finish();
}
