// Competitive-ratio evaluation: runs a policy over a trace and normalizes
// its cost by the exact offline optimum (or a caller-provided value, so
// sweeps can amortize one DP solve across many policy/predictor cells).
#pragma once

#include <string>

#include "core/policy.hpp"
#include "core/simulator.hpp"
#include "predictor/predictor.hpp"
#include "trace/trace.hpp"

namespace repl {

struct RatioReport {
  double online_cost = 0.0;
  double opt_cost = 0.0;
  double opt_lower = 0.0;  // OPTL, for reference
  double ratio = 0.0;      // online / opt
  std::size_t num_transfers = 0;
  std::size_t num_local = 0;
  std::string policy_name;
  std::string predictor_name;
};

/// Runs the policy and computes online/OPT. `opt_cost` < 0 means "solve
/// the DP here". Event recording is disabled for speed.
RatioReport evaluate_policy(const SystemConfig& config,
                            ReplicationPolicy& policy, const Trace& trace,
                            Predictor& predictor, double opt_cost = -1.0);

/// The paper's bounds, for assertions and table columns.
inline double robustness_bound(double alpha) { return 1.0 + 1.0 / alpha; }
inline double consistency_bound(double alpha) { return (5.0 + alpha) / 3.0; }

}  // namespace repl
