#include "util/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/check.hpp"

namespace repl {

double histogram_quantile(const std::vector<double>& bounds,
                          const std::vector<std::uint64_t>& cumulative,
                          double q) {
  REPL_REQUIRE(cumulative.size() == bounds.size() + 1);
  REPL_REQUIRE(q >= 0.0 && q <= 1.0);
  const std::uint64_t total = cumulative.back();
  if (total == 0) return 0.0;
  const double rank = q * static_cast<double>(total);
  std::size_t bucket = 0;
  while (bucket < cumulative.size() &&
         static_cast<double>(cumulative[bucket]) < rank) {
    ++bucket;
  }
  if (bucket >= bounds.size()) {
    // Landed in +Inf: the best point estimate we can give is the edge.
    return bounds.empty() ? 0.0 : bounds.back();
  }
  const double lo = bucket == 0 ? 0.0 : bounds[bucket - 1];
  const double hi = bounds[bucket];
  const std::uint64_t below = bucket == 0 ? 0 : cumulative[bucket - 1];
  const std::uint64_t inside = cumulative[bucket] - below;
  if (inside == 0) return hi;
  const double frac = (rank - static_cast<double>(below)) /
                      static_cast<double>(inside);
  return lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  REPL_REQUIRE(hi > lo);
  REPL_REQUIRE(bins > 0);
}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  const double frac = (x - lo_) / (hi_ - lo_);
  auto bin = static_cast<std::size_t>(frac * static_cast<double>(counts_.size()));
  bin = std::min(bin, counts_.size() - 1);
  ++counts_[bin];
}

double Histogram::bin_lo(std::size_t bin) const {
  REPL_REQUIRE(bin < counts_.size());
  return lo_ + (hi_ - lo_) * static_cast<double>(bin) /
                   static_cast<double>(counts_.size());
}

double Histogram::bin_hi(std::size_t bin) const {
  REPL_REQUIRE(bin < counts_.size());
  return lo_ + (hi_ - lo_) * static_cast<double>(bin + 1) /
                   static_cast<double>(counts_.size());
}

std::string Histogram::ascii(std::size_t width) const {
  std::size_t max_count = 1;
  for (std::size_t c : counts_) max_count = std::max(max_count, c);
  std::ostringstream os;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const std::size_t bar =
        counts_[b] == 0
            ? 0
            : std::max<std::size_t>(1, counts_[b] * width / max_count);
    os << "[" << bin_lo(b) << ", " << bin_hi(b) << ") "
       << std::string(bar, '#') << " " << counts_[b] << "\n";
  }
  return os.str();
}

LogHistogram::LogHistogram(double lo, double hi, std::size_t bins_per_decade)
    : log_lo_(std::log10(lo)) {
  REPL_REQUIRE(lo > 0.0);
  REPL_REQUIRE(hi > lo);
  REPL_REQUIRE(bins_per_decade > 0);
  step_ = 1.0 / static_cast<double>(bins_per_decade);
  const double decades = std::log10(hi) - log_lo_;
  const auto bins =
      static_cast<std::size_t>(std::ceil(decades / step_ - 1e-12));
  counts_.assign(std::max<std::size_t>(bins, 1), 0);
}

void LogHistogram::add(double x) {
  ++total_;
  if (x <= 0.0 || std::log10(x) < log_lo_) {
    ++underflow_;
    return;
  }
  const auto bin =
      static_cast<std::size_t>((std::log10(x) - log_lo_) / step_);
  if (bin >= counts_.size()) {
    ++overflow_;
    return;
  }
  ++counts_[bin];
}

double LogHistogram::bin_lo(std::size_t bin) const {
  REPL_REQUIRE(bin < counts_.size());
  return std::pow(10.0, log_lo_ + step_ * static_cast<double>(bin));
}

double LogHistogram::bin_hi(std::size_t bin) const {
  REPL_REQUIRE(bin < counts_.size());
  return std::pow(10.0, log_lo_ + step_ * static_cast<double>(bin + 1));
}

std::string LogHistogram::ascii(std::size_t width) const {
  std::size_t max_count = 1;
  for (std::size_t c : counts_) max_count = std::max(max_count, c);
  std::ostringstream os;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const std::size_t bar =
        counts_[b] == 0
            ? 0
            : std::max<std::size_t>(1, counts_[b] * width / max_count);
    os << "[" << bin_lo(b) << ", " << bin_hi(b) << ") "
       << std::string(bar, '#') << " " << counts_[b] << "\n";
  }
  return os.str();
}

}  // namespace repl
