// Streaming and batch descriptive statistics used by trace analysis and
// the benchmark harness.
#pragma once

#include <cstddef>
#include <vector>

namespace repl {

/// Numerically stable streaming mean/variance (Welford) with min/max.
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const;
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const;
  double max() const;
  double sum() const { return sum_; }

  /// Merges another accumulator (parallel reduction friendly).
  void merge(const RunningStats& other);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Batch quantile with linear interpolation (type-7, the numpy default).
/// `q` in [0, 1]. The input is copied and sorted.
double quantile(std::vector<double> values, double q);

/// Convenience: several quantiles with a single sort.
std::vector<double> quantiles(std::vector<double> values,
                              const std::vector<double>& qs);

/// Pearson correlation of two equal-length series.
double pearson_correlation(const std::vector<double>& xs,
                           const std::vector<double>& ys);

}  // namespace repl
