// FixedPredictor is header-only; this translation unit anchors the
// library target so every public header has a home in the build.
#include "predictor/fixed.hpp"
