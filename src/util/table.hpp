// Aligned-column table rendering for the benchmark harness. Benches print
// paper-style tables; this keeps their formatting uniform and readable.
#pragma once

#include <string>
#include <vector>

namespace repl {

/// Builds an aligned text table. Numeric cells should be pre-formatted by
/// the caller (cell(double) helpers provided). Column widths auto-fit.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Adds a row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Convenience cell formatters.
  static std::string cell(double v, int precision = 4);
  static std::string cell(long long v);
  static std::string cell(int v) { return cell(static_cast<long long>(v)); }
  static std::string cell(std::size_t v) {
    return cell(static_cast<long long>(v));
  }

  /// Renders with a header underline; right-aligns cells that look numeric.
  std::string str() const;

  /// Renders as GitHub-flavored markdown.
  std::string markdown() const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace repl
