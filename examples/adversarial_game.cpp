// The Section-9 lower-bound game, played interactively against a policy
// of your choice: the adversary watches the policy's copy-holding
// behaviour and places each next request exactly where it hurts, while
// feeding only *correct* predictions. Any deterministic algorithm ends
// up at ratio >= 3/2.
//
//   ./build/examples/adversarial_game --policy=drwp --alpha=0.5 --m=400
//   ./build/examples/adversarial_game --policy=conventional
//   ./build/examples/adversarial_game --policy=wang2021 --verbose
#include <iostream>
#include <memory>

#include "adversary/lower_bound_adversary.hpp"
#include "analysis/ratio.hpp"
#include "analysis/timeline.hpp"
#include "core/simulator.hpp"
#include "baselines/naive.hpp"
#include "baselines/wang2021.hpp"
#include "core/adaptive_drwp.hpp"
#include "core/drwp.hpp"
#include "offline/opt_dp.hpp"
#include "predictor/fixed.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

repl::PolicyPtr make_policy(const std::string& name, double alpha) {
  if (name == "drwp") return std::make_unique<repl::DrwpPolicy>(alpha);
  if (name == "conventional") {
    return std::make_unique<repl::ConventionalPolicy>();
  }
  if (name == "adaptive") {
    return std::make_unique<repl::AdaptiveDrwpPolicy>(
        alpha, repl::AdaptiveDrwpPolicy::Options{0.1, 50});
  }
  if (name == "wang2021") return std::make_unique<repl::Wang2021Policy>();
  if (name == "full") {
    return std::make_unique<repl::FullReplicationPolicy>();
  }
  if (name == "static") return std::make_unique<repl::StaticPolicy>();
  throw std::invalid_argument(
      "unknown --policy (try drwp, conventional, adaptive, wang2021, "
      "full, static): " + name);
}

const char* kind_name(repl::AdversaryKind kind) {
  switch (kind) {
    case repl::AdversaryKind::kK1a: return "K1a";
    case repl::AdversaryKind::kK1b: return "K1b";
    case repl::AdversaryKind::kK1c: return "K1c";
    case repl::AdversaryKind::kK2: return "K2";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  repl::CliParser cli("adversarial_game",
                      "Section-9 lower-bound adversary vs a policy");
  cli.add_flag("policy", "drwp", "victim policy");
  cli.add_flag("alpha", "0.5", "alpha for drwp/adaptive");
  cli.add_flag("lambda", "10", "transfer cost λ");
  cli.add_flag("m", "400", "number of adversarial requests");
  cli.add_bool_flag("verbose", "print the first 20 generated requests");
  cli.add_bool_flag("timeline",
                    "render an ASCII copy timeline of the first 12 "
                    "adversarial requests");
  if (!cli.parse(argc, argv)) return 0;

  repl::LowerBoundAdversary::Options options;
  options.lambda = cli.get_double("lambda");
  options.epsilon = options.lambda * 1e-4;
  options.num_requests = static_cast<int>(cli.get_int("m"));
  const repl::LowerBoundAdversary adversary(options);

  const repl::PolicyPtr prototype =
      make_policy(cli.get_string("policy"), cli.get_double("alpha"));
  const repl::AdversaryResult generated = adversary.generate(*prototype);

  if (cli.get_bool("verbose")) {
    repl::Table table({"#", "time", "server", "kind"});
    for (std::size_t i = 0; i < std::min<std::size_t>(20, generated.trace.size());
         ++i) {
      table.add_row({repl::Table::cell(i),
                     repl::Table::cell(generated.trace[i].time, 4),
                     repl::Table::cell(generated.trace[i].server),
                     kind_name(generated.kinds[i])});
    }
    std::cout << table.str() << "\n";
  }

  repl::FixedPredictor beyond = repl::always_beyond_predictor();
  if (cli.get_bool("timeline")) {
    // Replay the opening of the game and render the copy timeline.
    const std::size_t prefix_len =
        std::min<std::size_t>(12, generated.trace.size());
    std::vector<repl::Request> prefix(
        generated.trace.requests().begin(),
        generated.trace.requests().begin() +
            static_cast<std::ptrdiff_t>(prefix_len));
    const repl::Trace opening(2, std::move(prefix));
    const repl::PolicyPtr replayed =
        make_policy(cli.get_string("policy"), cli.get_double("alpha"));
    const repl::SimulationResult run =
        repl::Simulator(adversary.config())
            .run(*replayed, opening, beyond);
    std::cout << "opening timeline ('=' copy, '*' special, 'o' local, "
                 "'x' transfer):\n"
              << repl::render_timeline(run, opening) << "\n";
  }

  // Replay the victim on the generated trace with the same (correct,
  // always-"beyond") predictions and normalize by the exact optimum.
  const repl::PolicyPtr victim =
      make_policy(cli.get_string("policy"), cli.get_double("alpha"));
  const repl::RatioReport report = repl::evaluate_policy(
      adversary.config(), *victim, generated.trace, beyond);

  std::cout << "victim:            " << report.policy_name << "\n"
            << "requests:          " << generated.trace.size() << "  (K1a "
            << generated.count(repl::AdversaryKind::kK1a) << ", K1b "
            << generated.count(repl::AdversaryKind::kK1b) << ", K1c "
            << generated.count(repl::AdversaryKind::kK1c) << ", K2 "
            << generated.count(repl::AdversaryKind::kK2) << ")\n"
            << "online cost:       " << report.online_cost << "\n"
            << "optimal cost:      " << report.opt_cost << "\n"
            << "ratio:             " << report.ratio
            << "   (paper lower bound: 3/2 for any deterministic "
               "algorithm)\n";
  return 0;
}
