// Minimal CSV reading/writing for trace import/export and bench output.
// Handles quoting of fields containing commas, quotes, or newlines; does
// not attempt full RFC 4180 (multi-line quoted fields are supported on
// read, embedded CR is normalized away).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace repl {

using CsvRow = std::vector<std::string>;

/// Serializes one row, quoting fields as needed, and appends '\n'.
void write_csv_row(std::ostream& os, const CsvRow& row);

/// Parses a complete CSV document. Empty trailing line is ignored.
/// Throws std::invalid_argument on unterminated quotes.
std::vector<CsvRow> parse_csv(const std::string& text);

/// Reads a whole file; throws std::runtime_error if it cannot be opened.
std::string read_file(const std::string& path);

/// Writes a whole file; throws std::runtime_error on failure.
void write_file(const std::string& path, const std::string& contents);

/// Formats a double with enough digits to round-trip (max_digits10).
std::string format_double(double v);

}  // namespace repl
