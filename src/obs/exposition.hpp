// Renders a MetricsRegistry into wire formats: Prometheus text
// exposition format 0.0.4 and a JSON document. Both render from the same
// collect() snapshot, so the two formats always describe the same scrape.
#pragma once

#include <functional>
#include <string>

#include "obs/metrics.hpp"
#include "util/json.hpp"

namespace repl::obs {

/// Prometheus text exposition (content type
/// "text/plain; version=0.0.4; charset=utf-8"): one `# HELP` / `# TYPE`
/// pair per family, cumulative `_bucket{le=...}` / `_sum` / `_count`
/// series for histograms, escaped help strings and label values,
/// deterministic (name, labels) order.
std::string prometheus_text(MetricsRegistry& registry);

/// Same rendering over an explicit sample snapshot — the federation
/// path, where one exposition merges several registries' samples.
/// `samples` must be sorted by (name, labels); obs::sort_samples does.
std::string prometheus_text(const std::vector<Sample>& samples);

/// The MIME type `prometheus_text` should be served under.
const char* prometheus_content_type();

/// JSON exposition: `{"metrics": {"<series>": {"type", "value"| "count"/
/// "sum"/"buckets"}, ...}, ...extra}`. Series keys carry their labels in
/// Prometheus selector syntax (`repl_stage_seconds{stage="route"}`).
/// `extra`, when set, appends additional top-level members after
/// "metrics" (e.g. per-connection detail) into the still-open root
/// object.
std::string metrics_json_text(
    MetricsRegistry& registry,
    const std::function<void(JsonWriter&)>& extra = nullptr);

/// JSON exposition over an explicit sample snapshot (see above).
std::string metrics_json_text(
    const std::vector<Sample>& samples,
    const std::function<void(JsonWriter&)>& extra = nullptr);

}  // namespace repl::obs
