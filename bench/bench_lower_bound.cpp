// Experiment E6 — Section 9 of the paper: the 3/2 lower bound on the
// consistency of any deterministic learning-augmented algorithm. The
// adaptive adversary plays against every deterministic policy in the
// library under always-correct predictions; each is forced to a ratio
// approaching (at least) 3/2 against the exact offline optimum.
#include <iostream>
#include <memory>

#include "adversary/lower_bound_adversary.hpp"
#include "analysis/ratio.hpp"
#include "baselines/naive.hpp"
#include "baselines/wang2021.hpp"
#include "bench_util.hpp"
#include "core/adaptive_drwp.hpp"
#include "core/drwp.hpp"
#include "offline/opt_dp.hpp"
#include "predictor/fixed.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace repl;
  CliParser cli("bench_lower_bound",
                "Section 9: adversary forces ratio >= 3/2");
  cli.add_flag("lambda", "10", "transfer cost");
  cli.add_flag("m", "600", "adversarial requests");
  if (!cli.parse(argc, argv)) return 0;

  LowerBoundAdversary::Options options;
  options.lambda = cli.get_double("lambda");
  options.epsilon = options.lambda * 1e-4;
  options.num_requests = static_cast<int>(cli.get_int("m"));
  const LowerBoundAdversary adversary(options);

  std::vector<std::pair<std::string, PolicyPtr>> victims;
  for (double alpha : {0.2, 0.5, 1.0}) {
    victims.emplace_back("drwp(alpha=" + Table::cell(alpha, 1) + ")",
                         std::make_unique<DrwpPolicy>(alpha));
  }
  victims.emplace_back("conventional",
                       std::make_unique<ConventionalPolicy>());
  victims.emplace_back(
      "adaptive(0.3,beta=0.1)",
      std::make_unique<AdaptiveDrwpPolicy>(
          0.3, AdaptiveDrwpPolicy::Options{0.1, 50}));
  victims.emplace_back("wang2021", std::make_unique<Wang2021Policy>());
  victims.emplace_back("full-replication",
                       std::make_unique<FullReplicationPolicy>());
  victims.emplace_back("static", std::make_unique<StaticPolicy>());
  victims.emplace_back("single-copy-chase",
                       std::make_unique<SingleCopyChasePolicy>());

  bench::ShapeChecks checks;
  Table table(
      {"victim", "K1a", "K1b", "K1c", "K2", "online", "OPT", "ratio"});
  FixedPredictor beyond = always_beyond_predictor();
  for (auto& [label, prototype] : victims) {
    const AdversaryResult generated = adversary.generate(*prototype);
    const PolicyPtr victim = prototype->clone();
    const RatioReport report = evaluate_policy(
        adversary.config(), *victim, generated.trace, beyond);
    table.add_row({label, Table::cell(generated.count(AdversaryKind::kK1a)),
                   Table::cell(generated.count(AdversaryKind::kK1b)),
                   Table::cell(generated.count(AdversaryKind::kK1c)),
                   Table::cell(generated.count(AdversaryKind::kK2)),
                   Table::cell(report.online_cost, 1),
                   Table::cell(report.opt_cost, 1),
                   Table::cell(report.ratio, 4)});
    checks.expect(report.ratio > 1.45,
                  label + " forced above ~3/2 (got " +
                      Table::cell(report.ratio, 4) + ")");
  }
  std::cout << table.str() << "\n";
  std::cout << "Note: predictions are genuinely correct on these traces "
               "(all same-server gaps exceed lambda,\nand the adversary "
               "forecasts 'beyond'), so this measures consistency, not "
               "robustness.\n";
  return checks.finish();
}
