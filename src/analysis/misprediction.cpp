#include "analysis/misprediction.hpp"

#include "offline/opt_lower_bound.hpp"
#include "util/check.hpp"

namespace repl {

MispredictionReport analyze_mispredictions(const SimulationResult& result,
                                           const Trace& trace,
                                           double alpha) {
  REPL_REQUIRE(result.serves.size() == trace.size());
  REPL_REQUIRE(alpha > 0.0 && alpha <= 1.0);
  const SystemConfig& config = result.config;
  const double lambda = config.transfer_cost;

  MispredictionReport report;
  report.classes.assign(trace.size(), MispredictionClass::kCorrect);

  for (std::size_t i = 0; i < trace.size(); ++i) {
    const int p = trace.prev_same_server(i);
    Prediction issued;
    double gap = 0.0;
    if (p >= 0) {
      issued = result.serves[static_cast<std::size_t>(p)].prediction;
      gap = trace[i].time - trace[static_cast<std::size_t>(p)].time;
    } else if (trace[i].server == config.initial_server) {
      issued = result.initial_prediction;  // forecast made at the dummy r0
      gap = trace[i].time;
    } else {
      ++report.uncovered;
      continue;
    }
    const bool truth_within = gap <= lambda;
    if (issued.within_lambda == truth_within) {
      ++report.correct;
      continue;
    }
    MispredictionClass cls;
    if (gap <= alpha * lambda) {
      cls = MispredictionClass::kM1;
      ++report.m1;
    } else if (gap <= lambda) {
      cls = MispredictionClass::kM2;
      ++report.m2;
    } else {
      cls = MispredictionClass::kM3;
      ++report.m3;
    }
    report.classes[i] = cls;
  }

  report.penalty_bound = lambda * static_cast<double>(report.m2) +
                         (2.0 - alpha) * lambda *
                             static_cast<double>(report.m3);
  const double opt_l = opt_lower_bound(config, trace);
  report.ratio_increase_bound =
      opt_l > 0.0 ? report.penalty_bound / opt_l
                  : std::numeric_limits<double>::infinity();
  return report;
}

}  // namespace repl
