// Simulator tests: cost integration, horizon clipping, event recording,
// and invariant enforcement against deliberately broken policies.
#include <cmath>

#include <gtest/gtest.h>

#include "core/drwp.hpp"
#include "core/simulator.hpp"
#include "predictor/fixed.hpp"
#include "test_util.hpp"

namespace repl {
namespace {

using testing::make_config;

/// A policy that violates the at-least-one-copy requirement: it drops the
/// initial copy on the first expiry even when it is the only one.
class DropsOnlyCopyPolicy final : public ReplicationPolicy {
 public:
  void reset(const SystemConfig& config, const Prediction&,
             EventSink& sink) override {
    config_ = config;
    holds_ = true;
    dropped_at_ = config.transfer_cost;  // drop at time λ
    sink.on_create(config.initial_server, 0.0);
  }
  void advance_to(double time, EventSink& sink) override {
    if (holds_ && time > dropped_at_) {
      holds_ = false;
      sink.on_drop(config_.initial_server, dropped_at_);
    }
  }
  ServeAction on_request(int server, double, const Prediction&,
                         EventSink&) override {
    ServeAction a;
    a.local = true;
    a.source = server;
    return a;
  }
  double next_transition_time() const override {
    return holds_ ? dropped_at_ : std::numeric_limits<double>::infinity();
  }
  bool holds(int server) const override {
    return holds_ && server == config_.initial_server;
  }
  int copy_count() const override { return holds_ ? 1 : 0; }
  std::string name() const override { return "drops-only-copy"; }
  std::unique_ptr<ReplicationPolicy> clone() const override {
    return std::make_unique<DropsOnlyCopyPolicy>(*this);
  }

 private:
  SystemConfig config_;
  bool holds_ = false;
  double dropped_at_ = 0.0;
};

/// A policy that claims a local serve without holding a copy (and emits
/// no transfer): the simulator must flag the inconsistency.
class LiesAboutLocalPolicy final : public ReplicationPolicy {
 public:
  void reset(const SystemConfig& config, const Prediction&,
             EventSink& sink) override {
    config_ = config;
    sink.on_create(config.initial_server, 0.0);
  }
  void advance_to(double, EventSink&) override {}
  ServeAction on_request(int server, double, const Prediction&,
                         EventSink&) override {
    ServeAction a;
    a.local = server == config_.initial_server;
    if (!a.local) a.source = config_.initial_server;  // but no transfer!
    return a;
  }
  double next_transition_time() const override {
    return std::numeric_limits<double>::infinity();
  }
  bool holds(int server) const override {
    return server == config_.initial_server;
  }
  int copy_count() const override { return 1; }
  std::string name() const override { return "lies-about-local"; }
  std::unique_ptr<ReplicationPolicy> clone() const override {
    return std::make_unique<LiesAboutLocalPolicy>(*this);
  }

 private:
  SystemConfig config_;
};

TEST(Simulator, RejectsServerCountMismatch) {
  const SystemConfig config = make_config(3, 1.0);
  const Trace trace(2, {{1.0, 1}});
  DrwpPolicy policy(0.5);
  FixedPredictor beyond = always_beyond_predictor();
  EXPECT_THROW(Simulator(config).run(policy, trace, beyond),
               std::invalid_argument);
}

TEST(Simulator, DetectsAtLeastOneCopyViolation) {
  const SystemConfig config = make_config(2, 1.0);
  const Trace trace(2, {{5.0, 0}});
  DropsOnlyCopyPolicy policy;
  FixedPredictor beyond = always_beyond_predictor();
  EXPECT_THROW(Simulator(config).run(policy, trace, beyond), CheckFailure);
}

TEST(Simulator, DetectsServeActionInconsistency) {
  const SystemConfig config = make_config(2, 1.0);
  const Trace trace(2, {{5.0, 1}});  // request at the non-holding server
  LiesAboutLocalPolicy policy;
  FixedPredictor beyond = always_beyond_predictor();
  EXPECT_THROW(Simulator(config).run(policy, trace, beyond), CheckFailure);
}

TEST(Simulator, StorageClippedAtHorizon) {
  // One request; default horizon is its time, so storage counts [0, t1]
  // only even though copies live longer.
  const SystemConfig config = make_config(1, 10.0);
  const Trace trace(1, {{3.0, 0}});
  DrwpPolicy policy(0.5);
  FixedPredictor beyond = always_beyond_predictor();
  const SimulationResult result =
      Simulator(config).run(policy, trace, beyond);
  EXPECT_DOUBLE_EQ(result.horizon, 3.0);
  EXPECT_DOUBLE_EQ(result.storage_cost, 3.0);
  EXPECT_DOUBLE_EQ(result.transfer_cost, 0.0);
}

TEST(Simulator, CustomHorizonExtendsStorage) {
  const SystemConfig config = make_config(1, 10.0);
  const Trace trace(1, {{3.0, 0}});
  DrwpPolicy policy(0.5);  // after t=3 the copy persists as special
  FixedPredictor beyond = always_beyond_predictor();
  SimulationOptions options;
  options.horizon = 20.0;
  const SimulationResult result =
      Simulator(config, options).run(policy, trace, beyond);
  EXPECT_DOUBLE_EQ(result.storage_cost, 20.0);
}

TEST(Simulator, WeightedStorageRates) {
  SystemConfig config = make_config(2, 10.0);
  config.storage_rates = {2.0, 0.5};
  const Trace trace(2, {{4.0, 1}});
  DrwpPolicy policy(0.5);
  FixedPredictor within = always_within_predictor();
  const SimulationResult result =
      Simulator(config).run(policy, trace, within);
  // s0 holds [0,4] at rate 2 => 8; s1 gets its copy at t=4 (no storage
  // before the horizon). One transfer of cost 10.
  EXPECT_DOUBLE_EQ(result.storage_cost, 8.0);
  EXPECT_DOUBLE_EQ(result.transfer_cost, 10.0);
}

TEST(Simulator, RecordsServesAndTransfers) {
  const SystemConfig config = make_config(2, 4.0);
  const Trace trace(2, {{1.0, 1}, {2.0, 0}, {9.0, 1}});
  DrwpPolicy policy(0.5);
  FixedPredictor beyond = always_beyond_predictor();
  const SimulationResult result =
      Simulator(config).run(policy, trace, beyond);
  ASSERT_EQ(result.serves.size(), 3u);
  EXPECT_EQ(result.serves[0].index, 0u);
  EXPECT_EQ(result.serves[0].server, 1);
  EXPECT_FALSE(result.serves[0].local);
  EXPECT_EQ(result.serves[0].source, 0);
  EXPECT_TRUE(result.serves[1].local);
  ASSERT_EQ(result.transfers.size(), 2u);
  EXPECT_EQ(result.transfers[0].src, 0);
  EXPECT_EQ(result.transfers[0].dst, 1);
  EXPECT_DOUBLE_EQ(result.transfers[0].time, 1.0);
  EXPECT_EQ(result.policy_name, "drwp(alpha=0.5)");
  EXPECT_EQ(result.predictor_name, "always-beyond");
  EXPECT_DOUBLE_EQ(result.initial_intended_duration, 2.0);
}

TEST(Simulator, RecordEventsOffStillCosts) {
  const SystemConfig config = make_config(2, 4.0);
  const Trace trace(2, {{1.0, 1}, {2.0, 0}, {9.0, 1}});
  FixedPredictor beyond = always_beyond_predictor();
  DrwpPolicy a(0.5), b(0.5);
  SimulationOptions lean;
  lean.record_events = false;
  const SimulationResult full = Simulator(config).run(a, trace, beyond);
  const SimulationResult slim =
      Simulator(config, lean).run(b, trace, beyond);
  EXPECT_DOUBLE_EQ(full.total_cost(), slim.total_cost());
  EXPECT_TRUE(slim.serves.empty());
  EXPECT_TRUE(slim.segments.empty());
}

TEST(Simulator, SegmentsSortedAndConsistent) {
  const SystemConfig config = make_config(4, 20.0);
  const Trace trace = testing::random_trace(4, 0.05, 2000.0, 41);
  DrwpPolicy policy(0.4);
  FixedPredictor beyond = always_beyond_predictor();
  const SimulationResult result =
      Simulator(config).run(policy, trace, beyond);
  ASSERT_FALSE(result.segments.empty());
  double prev_begin = 0.0;
  std::size_t infinite = 0;
  for (const CopySegment& seg : result.segments) {
    EXPECT_GE(seg.begin, prev_begin);
    prev_begin = seg.begin;
    EXPECT_GT(seg.end, seg.begin);
    if (std::isinf(seg.end)) ++infinite;
    if (std::isfinite(seg.special_from)) {
      EXPECT_GE(seg.special_from, seg.begin);
      EXPECT_LE(seg.special_from, seg.end);
    }
  }
  // Exactly one copy survives forever (the final special copy).
  EXPECT_EQ(infinite, 1u);
}

TEST(Simulator, EmptyTraceCostsNothing) {
  const SystemConfig config = make_config(2, 4.0);
  const Trace trace(2, {});
  DrwpPolicy policy(0.5);
  FixedPredictor beyond = always_beyond_predictor();
  const SimulationResult result =
      Simulator(config).run(policy, trace, beyond);
  EXPECT_DOUBLE_EQ(result.total_cost(), 0.0);
  EXPECT_EQ(result.num_transfers, 0u);
}

TEST(Simulator, InitialServerConfigurable) {
  SystemConfig config = make_config(3, 4.0);
  config.initial_server = 2;
  const Trace trace(3, {{1.0, 2}});
  DrwpPolicy policy(0.5);
  FixedPredictor beyond = always_beyond_predictor();
  const SimulationResult result =
      Simulator(config).run(policy, trace, beyond);
  EXPECT_EQ(result.num_local, 1u);
  EXPECT_EQ(result.num_transfers, 0u);
}

}  // namespace
}  // namespace repl
