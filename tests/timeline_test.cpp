// Timeline rendering tests plus cross-cutting property suites:
// clone-replay determinism and holds()/segment agreement.
#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "analysis/timeline.hpp"
#include "core/drwp.hpp"
#include "core/simulator.hpp"
#include "predictor/fixed.hpp"
#include "predictor/noisy.hpp"
#include "test_util.hpp"

namespace repl {
namespace {

using testing::make_config;

TEST(Timeline, RendersScenario) {
  // Scenario B of drwp_test: s0 holds [0,9] going special at 4 and is
  // dropped after the outgoing transfer; s1 receives transfers at 1 and 9.
  const SystemConfig config = make_config(2, 4.0);
  const Trace trace(2, {{1.0, 1}, {2.0, 0}, {9.0, 1}});
  FixedPredictor beyond = always_beyond_predictor();
  const SimulationResult result =
      testing::run_drwp(config, trace, 0.5, beyond);
  TimelineOptions options;
  options.width = 36;
  const std::string art = render_timeline(result, trace, options);
  // Two server rows plus the axis.
  EXPECT_NE(art.find("s0 |"), std::string::npos);
  EXPECT_NE(art.find("s1 |"), std::string::npos);
  EXPECT_NE(art.find("t=9"), std::string::npos);
  // Special period rendered on s0's row; transfer marks on s1's row.
  EXPECT_NE(art.find('*'), std::string::npos);
  EXPECT_NE(art.find('x'), std::string::npos);
  // s0's local serve at t=2 is a 'o'.
  EXPECT_NE(art.find('o'), std::string::npos);
}

TEST(Timeline, MarkerCountsMatchServes) {
  const SystemConfig config = make_config(3, 15.0);
  const Trace trace = testing::random_trace(3, 0.02, 1500.0, 21);
  AccuracyPredictor predictor(trace, 0.6, 5);
  const SimulationResult result =
      testing::run_drwp(config, trace, 0.5, predictor);
  TimelineOptions options;
  options.width = 2048;  // wide enough that no two requests collide
  options.show_axis = false;
  const std::string art = render_timeline(result, trace, options);
  const auto locals = static_cast<std::size_t>(
      std::count(art.begin(), art.end(), 'o'));
  const auto remotes = static_cast<std::size_t>(
      std::count(art.begin(), art.end(), 'x'));
  EXPECT_EQ(locals, result.num_local);
  EXPECT_EQ(remotes, result.num_transfers);
}

TEST(Timeline, RequiresEventLog) {
  const SystemConfig config = make_config(2, 4.0);
  const Trace trace(2, {{1.0, 1}});
  FixedPredictor beyond = always_beyond_predictor();
  DrwpPolicy policy(0.5);
  SimulationOptions lean;
  lean.record_events = false;
  const SimulationResult result =
      Simulator(config, lean).run(policy, trace, beyond);
  EXPECT_THROW(render_timeline(result, trace), std::invalid_argument);
}

TEST(Timeline, RejectsTinyWidth) {
  const SystemConfig config = make_config(2, 4.0);
  const Trace trace(2, {{1.0, 1}});
  FixedPredictor beyond = always_beyond_predictor();
  const SimulationResult result =
      testing::run_drwp(config, trace, 0.5, beyond);
  TimelineOptions options;
  options.width = 2;
  EXPECT_THROW(render_timeline(result, trace, options),
               std::invalid_argument);
}

// ---- Cross-cutting properties ---------------------------------------

TEST(PolicyProperties, CloneReplayEquivalence) {
  // Splitting a run in half via clone() and continuing must match the
  // uninterrupted run event for event (determinism + complete state in
  // clone). Exercised through costs and final copy sets.
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const Trace trace = testing::random_trace(4, 0.05, 2000.0, seed + 950);
    if (trace.size() < 10) continue;
    const SystemConfig config = make_config(4, 18.0);
    FixedPredictor beyond = always_beyond_predictor();
    DrwpPolicy whole(0.4);
    const double expected =
        Simulator(config).run(whole, trace, beyond).total_cost();

    // Manual two-phase drive with a clone swap in the middle.
    NullEventSink sink;
    DrwpPolicy first(0.4);
    first.reset(config, Prediction{false}, sink);
    const std::size_t half = trace.size() / 2;
    for (std::size_t i = 0; i < half; ++i) {
      first.advance_to(trace[i].time, sink);
      first.on_request(trace[i].server, trace[i].time, Prediction{false},
                       sink);
    }
    auto second = first.clone();
    for (std::size_t i = half; i < trace.size(); ++i) {
      second->advance_to(trace[i].time, sink);
      second->on_request(trace[i].server, trace[i].time, Prediction{false},
                         sink);
    }
    // Compare final holder sets with a fresh full run (cost bookkeeping
    // lives in the simulator, so compare state, then re-verify cost).
    DrwpPolicy reference(0.4);
    reference.reset(config, Prediction{false}, sink);
    for (std::size_t i = 0; i < trace.size(); ++i) {
      reference.advance_to(trace[i].time, sink);
      reference.on_request(trace[i].server, trace[i].time,
                           Prediction{false}, sink);
    }
    for (int s = 0; s < config.num_servers; ++s) {
      EXPECT_EQ(second->holds(s), reference.holds(s))
          << "seed=" << seed << " server=" << s;
    }
    EXPECT_EQ(second->copy_count(), reference.copy_count());
    EXPECT_GT(expected, 0.0);
  }
}

TEST(PolicyProperties, HoldsAgreesWithSegments) {
  // The policy's holds() introspection must agree with the simulator's
  // recorded segments at every request instant.
  const Trace trace = testing::random_trace(4, 0.05, 2000.0, 970);
  const SystemConfig config = make_config(4, 18.0);
  FixedPredictor beyond = always_beyond_predictor();
  DrwpPolicy policy(0.4);
  const SimulationResult result =
      Simulator(config).run(policy, trace, beyond);

  auto held_per_segments = [&](int server, double time) {
    for (const CopySegment& seg : result.segments) {
      if (seg.server == server && seg.begin <= time && time < seg.end) {
        return true;
      }
    }
    return false;
  };

  // Replay and probe just after each request.
  NullEventSink sink;
  DrwpPolicy replay(0.4);
  replay.reset(config, Prediction{false}, sink);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    replay.advance_to(trace[i].time, sink);
    replay.on_request(trace[i].server, trace[i].time, Prediction{false},
                      sink);
    for (int s = 0; s < config.num_servers; ++s) {
      EXPECT_EQ(replay.holds(s),
                held_per_segments(s, trace[i].time))
          << "request " << i << " server " << s;
    }
  }
}

TEST(PolicyProperties, RegularSourceAtExactExpiryInstant) {
  // A copy whose intended expiry coincides with another server's request
  // time is still a valid *regular* transfer source at that instant
  // (copies are valid through their expiry inclusive), and is dropped
  // when time moves on.
  NullEventSink sink;
  const SystemConfig config = make_config(2, 4.0);
  DrwpPolicy policy(0.5);
  policy.reset(config, Prediction{false}, sink);  // s0: E = 2
  policy.advance_to(2.0, sink);
  const ServeAction action =
      policy.on_request(1, 2.0, Prediction{false}, sink);
  EXPECT_FALSE(action.local);
  EXPECT_EQ(action.source, 0);
  EXPECT_FALSE(action.source_special);
  EXPECT_TRUE(policy.holds(0));
  policy.advance_to(3.0, sink);  // the expiry at exactly 2.0 now fires
  EXPECT_FALSE(policy.holds(0));
  EXPECT_TRUE(policy.holds(1));
}

}  // namespace
}  // namespace repl
