// Section-5 partition decomposition tests: aggregate identities, the
// Figure-6 instance's canonical partition structure, and ratio
// concentration reporting.
#include <cmath>

#include <gtest/gtest.h>

#include "analysis/allocation.hpp"
#include "analysis/partition.hpp"
#include "analysis/ratio.hpp"
#include "core/drwp.hpp"
#include "core/simulator.hpp"
#include "offline/opt_dp.hpp"
#include "predictor/fixed.hpp"
#include "predictor/noisy.hpp"
#include "predictor/oracle.hpp"
#include "test_util.hpp"
#include "trace/paper_instances.hpp"

namespace repl {
namespace {

using testing::make_config;

TEST(Partition, AggregateIdentities) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const Trace trace = testing::random_trace(4, 0.06, 1000.0, seed + 900);
    if (trace.empty()) continue;
    const SystemConfig config = make_config(4, 12.0);
    OraclePredictor oracle(trace);
    const SimulationResult result =
        testing::run_drwp(config, trace, 0.5, oracle);
    const OfflinePlan plan =
        OptimalDpSolver(config).solve_with_plan(trace);
    const PartitionReport report =
        partition_sequence(trace, result, plan);

    ASSERT_GE(report.count(), 1u);
    // Per-partition opt costs sum to the plan's (optimal) cost; online
    // costs sum to the allocation total.
    EXPECT_NEAR(report.total_opt, plan.cost,
                1e-9 * std::max(1.0, plan.cost))
        << "seed=" << seed;
    const AllocationReport allocation = allocate_costs(result, trace);
    EXPECT_NEAR(report.total_online, allocation.total_allocated,
                1e-9 * std::max(1.0, allocation.total_allocated))
        << "seed=" << seed;
    // Partitions tile the request sequence contiguously.
    std::size_t expected_first = 0;
    for (const Partition& partition : report.partitions) {
      EXPECT_EQ(partition.first_request, expected_first);
      EXPECT_GE(partition.last_request, partition.first_request);
      expected_first = partition.last_request + 1;
    }
    EXPECT_EQ(expected_first, trace.size());
  }
}

TEST(Partition, MaxRatioDominatesAggregate) {
  const Trace trace = testing::random_trace(5, 0.05, 3000.0, 41);
  const SystemConfig config = make_config(5, 25.0);
  AccuracyPredictor noisy(trace, 0.5, 7);
  const SimulationResult result =
      testing::run_drwp(config, trace, 0.4, noisy);
  const OfflinePlan plan = OptimalDpSolver(config).solve_with_plan(trace);
  const PartitionReport report = partition_sequence(trace, result, plan);
  // max over partitions of Online/OPT upper-bounds the aggregate ratio —
  // the heart of the paper's division argument.
  EXPECT_GE(report.max_ratio + 1e-9,
            report.total_online / report.total_opt);
}

TEST(Partition, Figure6SingleCycleIsOnePartition) {
  // In the Figure-6 instance both servers hold overlapping copies across
  // every interior request in the optimal strategy, so the whole cycle
  // is one partition ending at the final request.
  const double lambda = 10.0, eps = 1.0;
  const SystemConfig config = make_config(2, lambda);
  const Trace trace = make_figure6_trace(lambda, eps, 1);
  FixedPredictor beyond = always_beyond_predictor();
  const SimulationResult result =
      testing::run_drwp(config, trace, 0.5, beyond);
  const OfflinePlan plan = OptimalDpSolver(config).solve_with_plan(trace);
  const PartitionReport report = partition_sequence(trace, result, plan);
  ASSERT_EQ(report.count(), 1u);
  EXPECT_DOUBLE_EQ(report.partitions[0].online_cost, 55.0);
  EXPECT_DOUBLE_EQ(report.partitions[0].opt_cost, 3 * lambda + 2 * eps);
}

TEST(Partition, IsolatedRequestsFormSingletonPartitions) {
  // All requests at the single active server: the only copy lives there,
  // so no *other* server's copy ever crosses a request time — every
  // request is a partition boundary and partitions are singletons.
  const double lambda = 1.0;
  const SystemConfig config = make_config(2, lambda);
  const Trace trace(2, {{100.0, 0}, {200.0, 0}, {300.0, 0}});
  FixedPredictor beyond = always_beyond_predictor();
  const SimulationResult result =
      testing::run_drwp(config, trace, 0.5, beyond);
  const OfflinePlan plan = OptimalDpSolver(config).solve_with_plan(trace);
  const PartitionReport report = partition_sequence(trace, result, plan);
  EXPECT_EQ(report.count(), 3u);
  for (const Partition& partition : report.partitions) {
    EXPECT_EQ(partition.size(), 1u);
  }
}

TEST(Partition, OracleRunsStayNearConsistencyBoundPerPartition) {
  // Reported, not proven, for arbitrary optimal plans (see header); on
  // these workloads the per-partition ratios of oracle-driven DRWP stay
  // within a small slack of the consistency bound.
  const Trace trace = testing::random_trace(4, 0.05, 2000.0, 77);
  const SystemConfig config = make_config(4, 15.0);
  OraclePredictor oracle(trace);
  const double alpha = 0.5;
  const SimulationResult result =
      testing::run_drwp(config, trace, alpha, oracle);
  const OfflinePlan plan = OptimalDpSolver(config).solve_with_plan(trace);
  const PartitionReport report = partition_sequence(trace, result, plan);
  EXPECT_LE(report.total_online / report.total_opt,
            consistency_bound(alpha) + 1e-9);
}

}  // namespace
}  // namespace repl
