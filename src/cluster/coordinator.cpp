#include "cluster/coordinator.hpp"

#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <iomanip>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "checkpoint/partition_manifest.hpp"
#include "cluster/partition.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "trace/event_log.hpp"
#include "util/check.hpp"
#include "util/json.hpp"

namespace repl {

namespace {

/// Round-trip-exact double for a CLI argument.
std::string format_double(double value) {
  std::ostringstream out;
  out << std::setprecision(17) << value;
  return out.str();
}

}  // namespace

struct ClusterCoordinator::Partition {
  std::uint32_t id = 0;
  pid_t pid = -1;
  std::unique_ptr<ReconnectingEventStreamClient> client;
  /// Partition-local events encountered in the log so far (1-based
  /// position of the most recent one). Main serving thread only.
  std::uint64_t seen = 0;
  /// Events the worker already held at the initial handshake (restored
  /// from a pre-existing checkpoint); positions <= this are skipped.
  std::uint64_t send_from = 0;
  std::size_t respawns = 0;

  // Control-plane state, guarded by ClusterCoordinator::ctl_mu_.
  std::uint64_t active_epoch = 0;
  bool hello_seen = false;
  ControlHello hello;
  std::uint64_t progress_events = 0;
  std::uint64_t checkpoint_events = 0;
  std::vector<EngineObjectFinal> finals;
  ControlSummary summary;
  bool summary_seen = false;
  bool control_failed = false;
  std::string control_error;
  /// When the last checkpoint message landed (for /healthz age).
  std::chrono::steady_clock::time_point last_checkpoint_at{};
  /// Snapshots of the serving thread's `seen`/`respawns`, re-published
  /// under ctl_mu_ so the health/metrics threads can read them.
  std::uint64_t seen_published = 0;
  std::size_t respawns_published = 0;
};

struct ClusterCoordinator::Instruments {
  Instruments(obs::MetricsRegistry& r, std::uint32_t num_partitions)
      : workers_alive(r.gauge("repl_cluster_workers_alive",
                              "Worker processes spawned and not yet "
                              "reaped")) {
    for (std::uint32_t p = 0; p < num_partitions; ++p) {
      const obs::Labels labels{{"partition", std::to_string(p)}};
      routed.push_back(&r.counter(
          "repl_cluster_events_routed_total",
          "Events sent to this partition's worker (skipped "
          "already-ingested prefixes excluded; catch-up resends included)",
          labels));
      respawns.push_back(&r.counter(
          "repl_cluster_worker_respawns_total",
          "Times this partition's worker was killed and respawned",
          labels));
      checkpoints.push_back(&r.counter(
          "repl_cluster_checkpoints_total",
          "Per-partition checkpoints the worker reported", labels));
      in_flight.push_back(&r.gauge(
          "repl_cluster_events_in_flight",
          "Partition lag: events routed but not yet reported ingested "
          "by the worker's last progress message",
          labels));
    }
  }

  obs::Gauge& workers_alive;
  std::vector<obs::Counter*> routed;
  std::vector<obs::Counter*> respawns;
  std::vector<obs::Counter*> checkpoints;
  std::vector<obs::Gauge*> in_flight;
};

ClusterCoordinator::ClusterCoordinator(ClusterCoordinatorOptions options)
    : options_(std::move(options)) {
  REPL_REQUIRE_MSG(options_.num_partitions >= 1,
                   "cluster needs at least one partition");
  REPL_REQUIRE_MSG(!options_.worker_binary.empty(),
                   "cluster needs a worker binary path");
  REPL_REQUIRE_MSG(!options_.socket_dir.empty(),
                   "cluster needs a socket directory");
  options_.config.validate();
  if (options_.metrics != nullptr) {
    registry_ = options_.metrics;
  } else {
    owned_registry_ = std::make_unique<obs::MetricsRegistry>();
    registry_ = owned_registry_.get();
  }
  inst_ = std::make_unique<Instruments>(*registry_, options_.num_partitions);
  for (std::uint32_t p = 0; p < options_.num_partitions; ++p) {
    auto part = std::make_unique<Partition>();
    part->id = p;
    parts_.push_back(std::move(part));
  }
}

ClusterCoordinator::~ClusterCoordinator() {
  for (std::uint32_t p = 0; p < options_.num_partitions; ++p) {
    kill_worker(p);
  }
  stop_control_plane();
}

std::string ClusterCoordinator::event_socket_path(
    std::uint32_t partition) const {
  return options_.socket_dir + "/evt" + std::to_string(partition) + ".sock";
}

std::string ClusterCoordinator::control_socket_path() const {
  return options_.socket_dir + "/ctl.sock";
}

std::string ClusterCoordinator::snapshot_path(std::uint32_t partition) const {
  return options_.socket_dir + "/part" + std::to_string(partition) + ".ckpt";
}

std::string ClusterCoordinator::trace_part_path(
    std::uint32_t partition, std::size_t incarnation) const {
  return options_.trace_dir + "/trace.p" + std::to_string(partition) + ".i" +
         std::to_string(incarnation) + ".jsonl";
}

std::vector<std::string> ClusterCoordinator::trace_parts() const {
  std::vector<std::string> out;
  if (options_.trace_dir.empty()) return out;
  for (const auto& part : parts_) {
    for (std::size_t i = 0; i <= part->respawns; ++i) {
      out.push_back(trace_part_path(part->id, i));
    }
  }
  return out;
}

std::vector<obs::Sample> ClusterCoordinator::federated_samples() const {
  std::vector<obs::Sample> out = fed_.collect();
  // Derived cluster gauges, computed at scrape time from the federated
  // counters plus the routing thread's published watermarks.
  std::lock_guard<std::mutex> lock(ctl_mu_);
  bool any = false;
  std::uint64_t slowest = 0;
  for (const auto& part : parts_) {
    const std::uint64_t admitted =
        fed_.counter_value(part->id, "repl_net_events_admitted_total");
    obs::Sample lag;
    lag.name = "repl_cluster_admitted_lag";
    lag.help =
        "Events this partition has been sent (log watermark) minus "
        "events its worker last reported admitted";
    lag.type = obs::MetricType::kGauge;
    lag.labels = {{"partition", std::to_string(part->id)}};
    lag.value = part->seen_published > admitted
                    ? static_cast<double>(part->seen_published - admitted)
                    : 0.0;
    out.push_back(std::move(lag));
    const std::uint64_t progress = part->progress_events;
    if (!any || progress < slowest) slowest = progress;
    any = true;
  }
  obs::Sample floor;
  floor.name = "repl_cluster_slowest_partition_events";
  floor.help =
      "Smallest per-partition ingested-events watermark — the cluster's "
      "progress floor";
  floor.type = obs::MetricType::kGauge;
  floor.value = static_cast<double>(any ? slowest : 0);
  out.push_back(std::move(floor));
  obs::sort_samples(out);
  return out;
}

std::uint64_t ClusterCoordinator::federated_counter(
    std::uint32_t partition, const std::string& name) const {
  return fed_.counter_value(partition, name);
}

void ClusterCoordinator::health_json(JsonWriter& w) const {
  std::lock_guard<std::mutex> lock(ctl_mu_);
  const auto now = std::chrono::steady_clock::now();
  w.key("partitions").begin_array();
  for (const auto& part : parts_) {
    w.begin_object();
    w.key("partition").value(static_cast<std::uint64_t>(part->id));
    // A partition is "alive" once its current incarnation said hello and
    // its control stream has not failed; between a death and the next
    // hello it reads "respawning".
    const bool alive = part->hello_seen && !part->control_failed;
    w.key("state").value(alive ? "alive" : "respawning");
    w.key("respawns").value(
        static_cast<std::uint64_t>(part->respawns_published));
    w.key("events_routed").value(part->seen_published);
    w.key("events_ingested").value(part->progress_events);
    w.key("checkpoint_events").value(part->checkpoint_events);
    if (part->last_checkpoint_at.time_since_epoch().count() != 0) {
      w.key("last_checkpoint_age_seconds")
          .value(std::chrono::duration<double>(now - part->last_checkpoint_at)
                     .count());
    }
    w.key("summary_seen").value(part->summary_seen);
    w.end_object();
  }
  w.end_array();
}

int ClusterCoordinator::worker_pid(std::uint32_t partition) const {
  REPL_REQUIRE_MSG(partition < parts_.size(), "partition out of range");
  return static_cast<int>(parts_[partition]->pid);
}

void ClusterCoordinator::start_control_plane() {
  control_listener_ = std::make_unique<Listener>(
      Listener::unix_domain(control_socket_path()));
  accept_thread_ = std::thread([this] { control_accept_loop(); });
}

void ClusterCoordinator::stop_control_plane() {
  {
    std::lock_guard<std::mutex> lock(ctl_mu_);
    control_stopping_ = true;
  }
  if (control_listener_) control_listener_->shutdown();
  if (accept_thread_.joinable()) accept_thread_.join();
  for (std::thread& thread : control_threads_) {
    if (thread.joinable()) thread.join();
  }
  control_threads_.clear();
  control_listener_.reset();
}

void ClusterCoordinator::control_accept_loop() {
  for (;;) {
    Socket sock = control_listener_->accept();
    if (!sock.valid()) return;
    std::lock_guard<std::mutex> lock(ctl_mu_);
    if (control_stopping_) return;
    const std::uint64_t epoch = ++next_epoch_;
    control_threads_.emplace_back(
        [this, epoch](Socket s) { control_connection_main(std::move(s), epoch); },
        std::move(sock));
  }
}

void ClusterCoordinator::control_connection_main(Socket sock,
                                                 std::uint64_t epoch) {
  ClusterControlAssembler assembler("control#" + std::to_string(epoch));
  std::vector<ControlMessage> messages;
  Partition* part = nullptr;
  try {
    std::vector<unsigned char> buf(std::size_t{64} << 10);
    for (;;) {
      const std::size_t n = sock.read_some(buf.data(), buf.size());
      if (n == 0) {
        if (!assembler.complete()) {
          throw std::runtime_error(
              "control stream closed before its summary (worker died)");
        }
        return;
      }
      messages.clear();
      assembler.feed(buf.data(), n, messages);
      if (messages.empty()) continue;
      std::lock_guard<std::mutex> lock(ctl_mu_);
      for (ControlMessage& msg : messages) {
        if (msg.type == ControlType::kHello) {
          // The assembler already validated internal consistency; check
          // the hello against *this* cluster's geometry. Attribute the
          // connection first so a mismatch lands on the right partition.
          if (msg.hello.partition_id >= options_.num_partitions) {
            throw std::runtime_error(
                "hello from partition " +
                std::to_string(msg.hello.partition_id) +
                " but the cluster has " +
                std::to_string(options_.num_partitions) + " partitions");
          }
          part = parts_[msg.hello.partition_id].get();
          // Latest connection for a partition wins: a respawned worker's
          // stream replaces its predecessor's, whose thread goes stale.
          part->active_epoch = epoch;
          part->hello_seen = true;
          part->hello = msg.hello;
          require_partition_function_version(msg.hello.pf_version);
          REPL_REQUIRE_MSG(
              msg.hello.num_partitions == options_.num_partitions,
              "worker believes in " << msg.hello.num_partitions
                                    << " partitions, cluster runs "
                                    << options_.num_partitions);
          REPL_REQUIRE_MSG(
              msg.hello.num_servers ==
                  static_cast<std::uint32_t>(options_.config.num_servers),
              "worker serves " << msg.hello.num_servers
                               << " servers, cluster serves "
                               << options_.config.num_servers);
          REPL_REQUIRE_MSG(msg.hello.base_seed == options_.base_seed,
                           "worker base seed " << msg.hello.base_seed
                                               << " != coordinator's "
                                               << options_.base_seed);
          continue;
        }
        // hello-first is assembler-enforced, so part is set here.
        if (part == nullptr || part->active_epoch != epoch) return;
        switch (msg.type) {
          case ControlType::kProgress:
            part->progress_events = msg.progress.events_ingested;
            break;
          case ControlType::kCheckpoint:
            part->checkpoint_events = msg.checkpoint.events_ingested;
            part->last_checkpoint_at = std::chrono::steady_clock::now();
            inst_->checkpoints[part->id]->inc();
            break;
          case ControlType::kMetrics:
            // Stale epochs never reach here (gate above), so this is
            // always the live worker's latest snapshot. FederatedMetrics
            // locks internally and clamps counters monotone across
            // respawns.
            fed_.update(part->id, msg.metrics.samples);
            break;
          case ControlType::kFinals:
            part->finals.insert(part->finals.end(), msg.finals.begin(),
                                msg.finals.end());
            break;
          case ControlType::kSummary:
            part->summary = msg.summary;
            part->summary_seen = true;
            break;
          case ControlType::kHello:
            break;  // handled above
        }
      }
      ctl_cv_.notify_all();
    }
  } catch (const std::exception& e) {
    std::lock_guard<std::mutex> lock(ctl_mu_);
    if (part != nullptr && part->active_epoch == epoch &&
        !part->summary_seen) {
      part->control_failed = true;
      part->control_error = e.what();
    }
    ctl_cv_.notify_all();
  }
}

void ClusterCoordinator::spawn_worker(std::uint32_t p) {
  Partition& part = *parts_[p];
  std::vector<std::string> args;
  args.push_back(options_.worker_binary);
  args.push_back("--role=worker");
  args.push_back("--partition=" + std::to_string(p));
  args.push_back("--partitions=" + std::to_string(options_.num_partitions));
  args.push_back("--event-socket=" + event_socket_path(p));
  args.push_back("--control-socket=" + control_socket_path());
  args.push_back("--servers=" +
                 std::to_string(options_.config.num_servers));
  args.push_back("--lambda=" + format_double(options_.config.transfer_cost));
  args.push_back("--initial-server=" +
                 std::to_string(options_.config.initial_server));
  args.push_back("--policy=" + options_.policy_spec);
  args.push_back("--predictor=" + options_.predictor_spec);
  args.push_back("--seed=" + std::to_string(options_.base_seed));
  args.push_back("--shards=" + std::to_string(options_.worker_shards));
  args.push_back("--threads=" + std::to_string(options_.worker_threads));
  args.push_back("--batch-events=" + std::to_string(options_.batch_events));
  if (options_.checkpoint_every > 0) {
    args.push_back("--checkpoint-every=" +
                   std::to_string(options_.checkpoint_every));
    args.push_back("--checkpoint-path=" + snapshot_path(p));
  }
  if (options_.compress_checkpoints) args.push_back("--compress");
  if (!options_.compute_lower_bound) args.push_back("--no-lower-bound");
  // Observability pass-through. Each incarnation gets its own trace part
  // file: a SIGKILLed worker leaves its last flushed prefix behind, and
  // the respawn must not clobber it.
  if (!options_.trace_dir.empty()) {
    args.push_back("--trace-out=" + trace_part_path(p, part.respawns));
  }
  if (!options_.log_spec.empty()) {
    args.push_back("--log-level=" + options_.log_spec);
  }
  if (options_.log_json) args.push_back("--log-json");
  if (options_.stats_every > 0) {
    args.push_back("--stats-every=" + format_double(options_.stats_every));
  }
  // Resume from the partition's checkpoint when a manifest-bound one
  // exists — which is exactly the respawn-after-kill case (and a cold
  // start in a directory where a previous serve checkpointed).
  const std::string snap = snapshot_path(p);
  if (std::filesystem::exists(snap) &&
      std::filesystem::exists(partition_manifest_path(snap))) {
    args.push_back("--resume-from=" + snap);
  }

  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (std::string& arg : args) argv.push_back(arg.data());
  argv.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid < 0) {
    throw std::runtime_error(std::string("fork failed: ") +
                             std::strerror(errno));
  }
  if (pid == 0) {
    ::execv(argv[0], argv.data());
    ::_exit(127);  // exec failed; the parent sees a fast exit
  }
  part.pid = pid;
  inst_->workers_alive.add(1.0);
  REPL_LOG_INFO("cluster", "spawned worker partition="
                               << p << " pid=" << pid << " incarnation="
                               << part.respawns);
}

void ClusterCoordinator::kill_worker(std::uint32_t p) {
  Partition& part = *parts_[p];
  if (part.pid < 0) return;
  ::kill(part.pid, SIGKILL);
  int status = 0;
  while (::waitpid(part.pid, &status, 0) < 0 && errno == EINTR) {
  }
  part.pid = -1;
  inst_->workers_alive.add(-1.0);
}

void ClusterCoordinator::respawn_worker(std::uint32_t p) {
  Partition& part = *parts_[p];
  if (part.respawns >= options_.max_respawns) {
    throw std::runtime_error(
        "partition " + std::to_string(p) + ": respawn budget (" +
        std::to_string(options_.max_respawns) + ") exhausted");
  }
  ++part.respawns;
  ++total_respawns_;
  inst_->respawns[p]->inc();
  REPL_LOG_WARN("cluster", "respawning worker partition="
                               << p << " attempt=" << part.respawns << "/"
                               << options_.max_respawns);
  kill_worker(p);
  part.client->drop();
  {
    // The dead worker's control stream is history: clear its partial
    // state so the respawn's hello/finals/summary start clean. Its
    // reader thread, if still draining, went stale when the new hello
    // bumps active_epoch.
    std::lock_guard<std::mutex> lock(ctl_mu_);
    part.hello_seen = false;
    part.summary_seen = false;
    part.control_failed = false;
    part.control_error.clear();
    part.finals.clear();
    part.progress_events = 0;
    part.respawns_published = part.respawns;
  }
  spawn_worker(p);
  part.client->connect();
}

void ClusterCoordinator::catch_up(std::uint32_t p, std::uint64_t through) {
  Partition& part = *parts_[p];
  // What the respawned worker reported holding (its restored snapshot's
  // cumulative event count; 0 when it started fresh).
  const std::uint64_t resume = part.client->resume_events();
  if (through <= resume) return;
  // Re-read the source log, filter this partition, skip the prefix the
  // worker holds, and resend up to (and including) position `through`.
  // Linear, but only runs on a respawn — correctness over speed.
  EventLogReader reader(log_path_);
  std::vector<LogEvent> batch;
  std::uint64_t pos = 0;
  bool done = false;
  while (!done && reader.read_batch(batch, options_.batch_events) > 0) {
    for (const LogEvent& event : batch) {
      if (partition_of(event.object, options_.num_partitions) != p) continue;
      ++pos;
      if (pos <= resume) continue;
      part.client->send(event);
      inst_->routed[p]->inc();
      if (pos == through) {
        done = true;
        break;
      }
    }
  }
  REPL_CHECK_MSG(pos == through,
                 "catch-up for partition " << p << " found only " << pos
                                           << " of " << through
                                           << " events in the log");
  part.client->flush();
}

void ClusterCoordinator::recover(std::uint32_t p, std::uint64_t through) {
  for (;;) {
    respawn_worker(p);  // throws once the budget is exhausted
    try {
      catch_up(p, through);
      return;
    } catch (const CheckFailure&) {
      throw;  // a short log is not survivable by respawning again
    } catch (const std::exception&) {
      // The fresh worker died mid-catch-up; go around (budget-capped).
    }
  }
}

void ClusterCoordinator::route_event(std::uint32_t p, const LogEvent& event) {
  Partition& part = *parts_[p];
  for (;;) {
    try {
      part.client->send(event);
      inst_->routed[p]->inc();
      return;
    } catch (const std::exception&) {
      // The worker is gone. Everything strictly before the current
      // event either landed or is re-sent by catch_up; the current
      // event retries on the fresh transport.
      recover(p, part.seen - 1);
    }
  }
}

void ClusterCoordinator::finish_partition(std::uint32_t p) {
  Partition& part = *parts_[p];
  for (;;) {
    try {
      part.client->finish();
      return;
    } catch (const std::exception&) {
      recover(p, part.seen);
    }
  }
}

void ClusterCoordinator::await_summary(std::uint32_t p) {
  Partition& part = *parts_[p];
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(ctl_mu_);
      ctl_cv_.wait(lock, [&] {
        return part.summary_seen || part.control_failed;
      });
      if (part.summary_seen) return;
    }
    // The worker died between finishing its event stream and delivering
    // its summary: respawn from its checkpoint, replay the tail, finish
    // again, and wait for the fresh incarnation's summary.
    recover(p, part.seen);
    finish_partition(p);
  }
}

ClusterServeResult ClusterCoordinator::serve_log(const std::string& log_path) {
  REPL_REQUIRE_MSG(!served_, "serve_log is one-shot");
  served_ = true;
  log_path_ = log_path;
  {
    EventLogReader probe(log_path);
    REPL_REQUIRE_MSG(probe.num_servers() == options_.config.num_servers,
                     "log declares " << probe.num_servers()
                                     << " servers, cluster serves "
                                     << options_.config.num_servers);
  }

  start_control_plane();
  for (std::uint32_t p = 0; p < options_.num_partitions; ++p) {
    spawn_worker(p);
  }
  for (std::uint32_t p = 0; p < options_.num_partitions; ++p) {
    Partition& part = *parts_[p];
    EventStreamClientOptions copt;
    copt.block_events = options_.batch_events;
    ReconnectPolicy policy = options_.reconnect;
    policy.seed += p;  // decorrelate the fleet's jitter
    const std::string path = event_socket_path(p);
    part.client = std::make_unique<ReconnectingEventStreamClient>(
        [path] { return connect_unix(path); },
        static_cast<std::uint32_t>(options_.config.num_servers), policy,
        copt);
    part.send_from = part.client->connect();
  }

  serve_start_ = std::chrono::steady_clock::now();
  auto last_stats = serve_start_;
  const bool tracing = obs::Tracer::global().enabled();
  EventLogReader reader(log_path);
  std::vector<LogEvent> batch;
  while (reader.read_batch(batch, options_.batch_events) > 0) {
    // Each routed batch gets a root span; its context rides a wire trace
    // frame to every worker ahead of the batch's events, so worker-side
    // ingest spans link back here across process boundaries. Best-effort
    // by design: a dead worker's frame is dropped (route_event recovers
    // the events; the trace just loses one edge).
    obs::Span route_span("route.batch");
    route_span.set_arg("events", batch.size());
    if (tracing) {
      const obs::TraceContext ctx = route_span.context();
      for (std::uint32_t p = 0; p < options_.num_partitions; ++p) {
        try {
          parts_[p]->client->send_trace(ctx.trace_id, ctx.span_id);
        } catch (const std::exception&) {
        }
      }
    }
    for (const LogEvent& event : batch) {
      const std::uint32_t p =
          partition_of(event.object, options_.num_partitions);
      Partition& part = *parts_[p];
      ++part.seen;
      if (part.seen > part.send_from) route_event(p, event);
      if (options_.on_progress) options_.on_progress(p, part.seen);
    }
    bool emit_stats = false;
    if (options_.stats_every > 0) {
      const auto now = std::chrono::steady_clock::now();
      if (std::chrono::duration<double>(now - last_stats).count() >=
          options_.stats_every) {
        last_stats = now;
        emit_stats = true;
      }
    }
    std::ostringstream stats_line;
    {
      std::lock_guard<std::mutex> lock(ctl_mu_);
      std::uint64_t total_seen = 0;
      for (std::uint32_t p = 0; p < options_.num_partitions; ++p) {
        Partition& part = *parts_[p];
        part.seen_published = part.seen;
        total_seen += part.seen;
        const std::uint64_t acked =
            std::min(part.progress_events, part.seen);
        inst_->in_flight[p]->set(static_cast<double>(part.seen - acked));
        if (emit_stats) {
          stats_line << " p" << p << "=" << part.progress_events << "/"
                     << part.seen;
        }
      }
      if (emit_stats) {
        std::ostringstream head;
        head << "cluster progress events=" << total_seen
             << " respawns=" << total_respawns_ << " ingested/seen:";
        stats_line.str(head.str() + stats_line.str());
      }
    }
    // Log outside the lock: sinks do I/O.
    if (emit_stats) REPL_LOG_INFO("cluster", stats_line.str());
  }

  for (std::uint32_t p = 0; p < options_.num_partitions; ++p) {
    finish_partition(p);
  }
  for (std::uint32_t p = 0; p < options_.num_partitions; ++p) {
    await_summary(p);
    inst_->in_flight[p]->set(0.0);
  }

  ClusterServeResult result;
  result.respawns = total_respawns_;
  result.summaries.resize(options_.num_partitions);
  std::vector<std::vector<EngineObjectFinal>> finals(options_.num_partitions);
  {
    std::lock_guard<std::mutex> lock(ctl_mu_);
    for (std::uint32_t p = 0; p < options_.num_partitions; ++p) {
      finals[p] = std::move(parts_[p]->finals);
      result.summaries[p] = parts_[p]->summary;
    }
  }

  // The deterministic cross-partition reduce: ascending-id k-way merge
  // of the per-partition finals (disjoint object spaces, each already
  // id-sorted), accumulated through reduce_object_finals — the exact
  // code path and floating-point order a single-process finish() uses.
  std::size_t total = 0;
  for (const auto& f : finals) total += f.size();
  std::vector<EngineObjectFinal> merged;
  merged.reserve(total);
  std::vector<std::size_t> idx(options_.num_partitions, 0);
  const std::size_t none = options_.num_partitions;
  for (;;) {
    std::size_t best = none;
    for (std::size_t p = 0; p < options_.num_partitions; ++p) {
      if (idx[p] >= finals[p].size()) continue;
      if (best == none || finals[p][idx[p]].id < finals[best][idx[best]].id) {
        best = p;
      }
    }
    if (best == none) break;
    merged.push_back(finals[best][idx[best]++]);
  }
  result.metrics = reduce_object_finals(merged);

  // Cross-check the reduce against the workers' own summaries. Integer
  // aggregates must agree exactly; the FP totals are intentionally
  // accumulated in a different (global id) order, so they are not
  // compared — the parity tests compare them against the single-process
  // engine instead, which is the contract that matters.
  std::uint64_t events = 0, objects = 0, local = 0, transfers = 0;
  for (std::uint32_t p = 0; p < options_.num_partitions; ++p) {
    const ControlSummary& s = result.summaries[p];
    events += s.events;
    objects += s.objects;
    local += s.num_local;
    transfers += s.num_transfers;
    REPL_CHECK_MSG(s.events == parts_[p]->seen,
                   "partition " << p << " summarized " << s.events
                                << " events but the log holds "
                                << parts_[p]->seen << " for it");
  }
  REPL_CHECK_MSG(objects == result.metrics.objects,
                 "summary object total " << objects
                                         << " != reduced "
                                         << result.metrics.objects);
  REPL_CHECK_MSG(events == result.metrics.events,
                 "summary event total " << events << " != reduced "
                                        << result.metrics.events);
  REPL_CHECK_MSG(local == result.metrics.num_local &&
                     transfers == result.metrics.num_transfers,
                 "summary serve-mix totals disagree with the reduce");

  // Workers exit on their own after the summary; reap them.
  for (std::uint32_t p = 0; p < options_.num_partitions; ++p) {
    Partition& part = *parts_[p];
    if (part.pid < 0) continue;
    int status = 0;
    while (::waitpid(part.pid, &status, 0) < 0 && errno == EINTR) {
    }
    part.pid = -1;
    inst_->workers_alive.add(-1.0);
  }
  stop_control_plane();
  return result;
}

}  // namespace repl
