#include "net/ingest_server.hpp"

#include <algorithm>
#include <deque>
#include <limits>
#include <stdexcept>
#include <utility>

#include "engine/engine.hpp"
#include "net/wire.hpp"
#include "obs/exposition.hpp"
#include "obs/log.hpp"
#include "obs/http_exporter.hpp"
#include "obs/metrics.hpp"
#include "util/check.hpp"
#include "util/json.hpp"

namespace repl {

namespace {

double seconds_since(std::chrono::steady_clock::time_point t) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t)
      .count();
}

}  // namespace

struct NetIngestServer::Connection {
  enum class State { kHandshake, kStreaming, kClosed, kFailed };

  std::size_t id = 0;
  std::string name;
  Socket sock;
  std::thread thread;

  // Everything below is guarded by NetIngestServer::mu_.
  State state = State::kHandshake;
  std::deque<LogEvent> queue;
  /// Newest enqueued event time: the connection's watermark floor while
  /// its queue is empty (future events cannot be earlier).
  double last_time = 0.0;
  std::uint64_t events_received = 0;
  std::uint64_t bytes_received = 0;
  std::string error;

  /// Completed-frame count already published to the frames counter.
  /// Touched only by this connection's reader thread — not under mu_.
  std::uint64_t frames_published = 0;
  /// Trace frames already published to latest_trace_. Reader thread only.
  std::uint64_t trace_frames_published = 0;
};

/// The registry series this server publishes. Counters are incremented
/// on the hot paths (reader threads, the admission thread); the gauges
/// mirror state under mu_ and are refreshed by a collect hook, so they
/// are exact as of each scrape.
struct NetIngestServer::Instruments {
  explicit Instruments(obs::MetricsRegistry& r)
      : events_admitted(r.counter(
            "repl_net_events_admitted_total",
            "Events of the logical stream admitted to the engine in "
            "time-ordered batches, including the resumed prefix")),
        events_received(r.counter(
            "repl_net_events_received_total",
            "Events decoded from validated frames across all connections "
            "this process lifetime (excludes any resumed prefix)")),
        bytes_received(r.counter("repl_net_bytes_received_total",
                                 "Bytes read off client sockets")),
        frames(r.counter("repl_net_frames_total",
                         "Wire frames completed and validated")),
        crc_rejects(r.counter(
            "repl_net_crc_rejects_total",
            "Connections killed by a CRC mismatch (frame header or block "
            "payload)")),
        backpressure_stalls(r.counter(
            "repl_net_backpressure_stalls_total",
            "Times a reader thread blocked because a bounded queue was "
            "full (one per stall episode, not per event)")),
        connections_opened_tcp(
            r.counter("repl_net_connections_opened_total",
                      "Client connections accepted", {{"kind", "tcp"}})),
        connections_opened_unix(
            r.counter("repl_net_connections_opened_total",
                      "Client connections accepted", {{"kind", "unix"}})),
        connections_failed(r.counter(
            "repl_net_connections_failed_total",
            "Connections killed by a protocol, order, or transport error")),
        connections_open(r.gauge("repl_net_connections_open",
                                 "Connections in handshake or streaming")),
        queued_events(r.gauge(
            "repl_net_queued_events",
            "Events decoded but not yet admitted, summed over queues")),
        watermark_lag(r.gauge(
            "repl_net_watermark_lag",
            "Stream-time distance between the newest decoded event and "
            "the admitted watermark (0 when fully drained)")),
        checkpoint_age(r.gauge(
            "repl_checkpoint_age_seconds",
            "Seconds since the last checkpoint landed; -1 before the "
            "first")),
        checkpoint_events(r.gauge(
            "repl_checkpoint_events",
            "Events of the logical stream covered by the last checkpoint")) {
  }

  obs::Counter& events_admitted;
  obs::Counter& events_received;
  obs::Counter& bytes_received;
  obs::Counter& frames;
  obs::Counter& crc_rejects;
  obs::Counter& backpressure_stalls;
  obs::Counter& connections_opened_tcp;
  obs::Counter& connections_opened_unix;
  obs::Counter& connections_failed;
  obs::Gauge& connections_open;
  obs::Gauge& queued_events;
  obs::Gauge& watermark_lag;
  obs::Gauge& checkpoint_age;
  obs::Gauge& checkpoint_events;
};

namespace {

const char* connection_state_name(int state) {
  switch (state) {
    case 0:
      return "handshake";
    case 1:
      return "streaming";
    case 2:
      return "closed";
    default:
      return "failed";
  }
}

}  // namespace

NetIngestServer::NetIngestServer(NetServerOptions options)
    : options_(std::move(options)) {
  REPL_REQUIRE_MSG(options_.batch_events > 0, "batch_events must be positive");
  REPL_REQUIRE_MSG(options_.max_connection_events > 0,
               "max_connection_events must be positive");
  REPL_REQUIRE_MSG(options_.max_total_events >= options_.max_connection_events,
               "max_total_events must be at least max_connection_events");
  REPL_REQUIRE_MSG(options_.tcp_port >= 0 || !options_.unix_path.empty(),
               "a TCP port or a unix socket path is required");
  if (options_.metrics != nullptr) {
    registry_ = options_.metrics;
  } else {
    owned_registry_ = std::make_unique<obs::MetricsRegistry>();
    registry_ = owned_registry_.get();
  }
  inst_ = std::make_unique<Instruments>(*registry_);
  hook_id_ = registry_->add_collect_hook([this] { refresh_gauges(); });
}

NetIngestServer::~NetIngestServer() {
  stop();
  // A shared registry outlives us: drop the hook before our state dies.
  // (The caller must not scrape a shared registry concurrently with this
  // destructor — same lifetime rule as any raw-pointer option.)
  registry_->remove_collect_hook(hook_id_);
  for (std::thread& t : accept_threads_) {
    if (t.joinable()) t.join();
  }
  for (auto& conn : connections_) {
    if (conn->thread.joinable()) conn->thread.join();
  }
}

void NetIngestServer::start(std::uint32_t num_servers,
                            std::uint64_t resume_events) {
  REPL_REQUIRE_MSG(!started_, "server already started");
  REPL_REQUIRE_MSG(num_servers > 0, "num_servers must be positive");
  num_servers_ = num_servers;
  resume_events_ = resume_events;
  start_time_ = std::chrono::steady_clock::now();
  if (options_.tcp_port >= 0) {
    tcp_ = std::make_unique<Listener>(
        Listener::tcp(options_.tcp_host, options_.tcp_port));
  }
  if (!options_.unix_path.empty()) {
    unix_ = std::make_unique<Listener>(
        Listener::unix_domain(options_.unix_path));
  }
  if (options_.metrics_port >= 0) {
    obs::MetricsHttpOptions http;
    http.host = options_.tcp_host;
    http.port = options_.metrics_port;
    http_ = std::make_unique<obs::MetricsHttpServer>(*registry_, http);
    http_->set_json_extra([this](JsonWriter& json) { append_extra_json(json); });
    http_->set_health_extra([this](JsonWriter& json) {
      std::lock_guard<std::mutex> lock(mu_);
      json.key("uptime_seconds")
          .value(started_ ? seconds_since(start_time_) : 0.0);
      json.key("stopping").value(stopping_);
    });
    http_->start();
  }
  // The admitted counter speaks logical-stream positions, like the
  // handshake ACK: a restart that resumes at N starts the counter at N,
  // so a scrape after recovery is never below one taken before the
  // crash.
  inst_->events_admitted.inc(resume_events);
  started_ = true;
  REPL_LOG_INFO("net", "ingest server started num_servers="
                           << num_servers << " resume_events=" << resume_events
                           << " tcp_port=" << (tcp_ ? tcp_->port() : -1)
                           << " metrics_port="
                           << (http_ ? http_->port() : -1));
  if (tcp_) {
    accept_threads_.emplace_back([this] { accept_loop(*tcp_, "tcp"); });
  }
  if (unix_) {
    accept_threads_.emplace_back([this] { accept_loop(*unix_, "unix"); });
  }
}

void NetIngestServer::accept_loop(Listener& listener, const char* kind) {
  for (;;) {
    Socket sock = listener.accept();
    if (!sock.valid()) return;  // listener shut down
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return;
    (kind[0] == 't' ? inst_->connections_opened_tcp
                    : inst_->connections_opened_unix)
        .inc();
    auto conn = std::make_unique<Connection>();
    conn->id = connections_.size();
    conn->name = std::string(kind) + " client #" + std::to_string(conn->id);
    conn->sock = std::move(sock);
    Connection& ref = *conn;
    connections_.push_back(std::move(conn));
    REPL_LOG_DEBUG("net", "accepted " << ref.name);
    ref.thread = std::thread([this, &ref] { connection_main(ref); });
  }
}

void NetIngestServer::connection_main(Connection& conn) {
  try {
    FrameAssembler assembler(conn.name);
    std::vector<LogEvent> decoded;
    unsigned char header[EventLogHeader::kSize];
    if (!conn.sock.read_exact(header, sizeof(header))) {
      throw std::runtime_error(conn.name +
                               ": disconnected before completing handshake");
    }
    assembler.feed(header, sizeof(header), decoded);
    if (assembler.header().num_servers != num_servers_) {
      throw std::runtime_error(
          conn.name + ": stream declares " +
          std::to_string(assembler.header().num_servers) +
          " servers, this system serves " + std::to_string(num_servers_));
    }
    unsigned char ack[kNetAckBytes];
    encode_net_ack(ack, resume_events_);
    conn.sock.write_all(ack, sizeof(ack));
    inst_->bytes_received.inc(sizeof(header));
    {
      std::lock_guard<std::mutex> lock(mu_);
      conn.bytes_received += sizeof(header);
      conn.state = Connection::State::kStreaming;
    }

    // Token bucket for the per-connection rate cap: starts full (one
    // second of burst), refills from elapsed wall time, and a deficit is
    // slept off on this reader thread — which stops the socket reads, so
    // the cap propagates to the peer as a closed TCP window, the same
    // pressure path as a full queue.
    const double rate = options_.max_events_per_sec;
    double tokens = rate;
    auto last_refill = std::chrono::steady_clock::now();

    std::vector<unsigned char> buf(std::size_t{64} << 10);
    for (;;) {
      const std::size_t n = conn.sock.read_some(buf.data(), buf.size());
      if (n == 0) {
        if (!assembler.at_boundary()) {
          throw std::runtime_error(
              conn.name + ": disconnected mid-frame (frame " +
              std::to_string(assembler.frames_completed()) +
              ", byte offset " + std::to_string(assembler.bytes_consumed()) +
              ")");
        }
        break;  // clean close at a frame boundary
      }
      decoded.clear();
      assembler.feed(buf.data(), n, decoded);
      inst_->bytes_received.inc(n);
      const std::uint64_t frames_done = assembler.frames_completed();
      if (frames_done > conn.frames_published) {
        inst_->frames.inc(frames_done - conn.frames_published);
        conn.frames_published = frames_done;
      }
      if (!decoded.empty()) inst_->events_received.inc(decoded.size());
      {
        std::lock_guard<std::mutex> lock(mu_);
        conn.bytes_received += n;
        if (assembler.trace_frames() > conn.trace_frames_published) {
          conn.trace_frames_published = assembler.trace_frames();
          latest_trace_ = assembler.latest_trace();
        }
      }
      if (rate > 0.0 && !decoded.empty()) {
        const auto now = std::chrono::steady_clock::now();
        tokens = std::min(
            rate, tokens + std::chrono::duration<double>(now - last_refill)
                                   .count() *
                               rate);
        last_refill = now;
        tokens -= static_cast<double>(decoded.size());
        if (tokens < 0.0) {
          inst_->backpressure_stalls.inc();
          std::this_thread::sleep_for(
              std::chrono::duration<double>(-tokens / rate));
        }
      }
      if (!decoded.empty()) enqueue(conn, decoded);
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      conn.state = Connection::State::kClosed;
      conn.sock.close();
    }
    REPL_LOG_DEBUG("net", conn.name << " closed cleanly events="
                                    << conn.events_received
                                    << " bytes=" << conn.bytes_received);
  } catch (const std::exception& e) {
    bool newly_failed = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (conn.state != Connection::State::kClosed) {
        conn.state = Connection::State::kFailed;
        conn.error = e.what();
        ++failed_connections_;
        inst_->connections_failed.inc();
        if (conn.error.find("CRC mismatch") != std::string::npos) {
          inst_->crc_rejects.inc();
        }
        newly_failed = true;
      }
      conn.sock.close();
    }
    if (newly_failed) {
      REPL_LOG_WARN("net", "connection killed: " << e.what());
    }
  }
  consumer_cv_.notify_all();
  space_cv_.notify_all();
}

void NetIngestServer::enqueue(Connection& conn,
                              const std::vector<LogEvent>& events) {
  std::unique_lock<std::mutex> lock(mu_);
  for (const LogEvent& event : events) {
    if (event.time < emitted_time_) {
      // This connection joined after the merged stream moved past its
      // times; admitting it would regress the engine's global order.
      throw std::runtime_error(
          conn.name + ": time-regressed stream (event at t=" +
          std::to_string(event.time) + " behind admitted watermark t=" +
          std::to_string(emitted_time_) + ")");
    }
    const auto room = [&] {
      return stopping_ ||
             (conn.queue.size() < options_.max_connection_events &&
              total_queued_ < options_.max_total_events);
    };
    if (!room()) {
      inst_->backpressure_stalls.inc();
      space_cv_.wait(lock, room);
    }
    if (stopping_) return;
    conn.queue.push_back(event);
    conn.last_time = event.time;
    ++conn.events_received;
    ++total_queued_;
    consumer_cv_.notify_one();
  }
}

double NetIngestServer::watermark_locked() const {
  double mark = std::numeric_limits<double>::infinity();
  for (const auto& conn : connections_) {
    switch (conn->state) {
      case Connection::State::kHandshake:
        // An open connection that has sent nothing might still send
        // anything (> 0); last_time is 0, so it blocks all admission.
        mark = std::min(mark, conn->last_time);
        break;
      case Connection::State::kStreaming:
        mark = std::min(mark, conn->queue.empty() ? conn->last_time
                                                  : conn->queue.front().time);
        break;
      case Connection::State::kClosed:
      case Connection::State::kFailed:
        break;  // no future events: no constraint
    }
  }
  return mark;
}

bool NetIngestServer::idle_end_locked() const {
  if (!options_.stop_when_idle) return false;
  if (connections_.size() < options_.min_connections) return false;
  if (total_queued_ > 0) return false;
  for (const auto& conn : connections_) {
    if (conn->state == Connection::State::kHandshake ||
        conn->state == Connection::State::kStreaming) {
      return false;
    }
  }
  return true;
}

bool NetIngestServer::next_batch(std::vector<LogEvent>& out) {
  out.clear();
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    if (stopping_) return false;
    const double mark = watermark_locked();
    while (out.size() < options_.batch_events) {
      Connection* best = nullptr;
      for (const auto& conn : connections_) {
        if (conn->queue.empty()) continue;
        if (best == nullptr ||
            conn->queue.front().time < best->queue.front().time) {
          best = conn.get();
        }
      }
      if (best == nullptr || best->queue.front().time > mark) break;
      out.push_back(best->queue.front());
      best->queue.pop_front();
      --total_queued_;
      emitted_time_ = out.back().time;
      ++admitted_events_;
    }
    if (!out.empty()) {
      inst_->events_admitted.inc(out.size());
      space_cv_.notify_all();
      return true;
    }
    if (idle_end_locked()) return false;
    consumer_cv_.wait(lock);
  }
}

void NetIngestServer::stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return;
    stopping_ = true;
    for (auto& conn : connections_) conn->sock.shutdown_both();
  }
  if (tcp_) tcp_->shutdown();
  if (unix_) unix_->shutdown();
  if (http_) http_->stop();
  consumer_cv_.notify_all();
  space_cv_.notify_all();
}

void NetIngestServer::note_checkpoint(std::uint64_t events_ingested) {
  std::lock_guard<std::mutex> lock(mu_);
  ++checkpoints_;
  checkpoint_events_ = events_ingested;
  checkpoint_time_ = std::chrono::steady_clock::now();
}

int NetIngestServer::tcp_port() const { return tcp_ ? tcp_->port() : -1; }

int NetIngestServer::metrics_port() const {
  return http_ ? http_->port() : -1;
}

obs::TraceContext NetIngestServer::latest_trace() const {
  std::lock_guard<std::mutex> lock(mu_);
  return latest_trace_;
}

std::uint64_t NetIngestServer::events_admitted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return admitted_events_;
}

std::size_t NetIngestServer::connections_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return connections_.size();
}

std::size_t NetIngestServer::connections_failed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return failed_connections_;
}

std::size_t NetIngestServer::events_queued() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_queued_;
}

void NetIngestServer::refresh_gauges() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t open = 0;
  double newest = 0.0;
  for (const auto& conn : connections_) {
    if (conn->state == Connection::State::kHandshake ||
        conn->state == Connection::State::kStreaming) {
      ++open;
      newest = std::max(newest, conn->last_time);
    }
  }
  inst_->connections_open.set(static_cast<double>(open));
  inst_->queued_events.set(static_cast<double>(total_queued_));
  inst_->watermark_lag.set(std::max(0.0, newest - emitted_time_));
  inst_->checkpoint_age.set(checkpoints_ > 0 ? seconds_since(checkpoint_time_)
                                             : -1.0);
  inst_->checkpoint_events.set(static_cast<double>(checkpoint_events_));
}

void NetIngestServer::append_extra_json(JsonWriter& json) const {
  std::lock_guard<std::mutex> lock(mu_);
  const double uptime = started_ ? seconds_since(start_time_) : 0.0;
  json.key("uptime_seconds").value(uptime);
  json.key("events_per_second")
      .value(uptime > 0.0 ? static_cast<double>(admitted_events_) / uptime
                          : 0.0);
  json.key("admitted_time").value(emitted_time_);
  json.key("per_connection").begin_array();
  for (const auto& conn : connections_) {
    json.begin_object();
    json.key("name").value(conn->name);
    json.key("state").value(
        connection_state_name(static_cast<int>(conn->state)));
    json.key("queued").value(static_cast<std::uint64_t>(conn->queue.size()));
    json.key("events").value(conn->events_received);
    json.key("bytes").value(conn->bytes_received);
    json.key("last_time").value(conn->last_time);
    if (!conn->error.empty()) json.key("error").value(conn->error);
    json.end_object();
  }
  json.end_array();
}

std::string NetIngestServer::metrics_json() const {
  return obs::metrics_json_text(
      *registry_, [this](JsonWriter& json) { append_extra_json(json); });
}

void NetIngestSource::attach(StreamingEngine& engine) {
  if (attached_) return;
  attached_ = true;
  EventLogHeader header;
  header.version = EventLogHeader::kVersionCompressed;
  header.num_servers = num_servers_;
  header.num_objects = 0;
  header.num_events = EventLogHeader::kUnknownCount;
  engine.bind_log(header);
  server_.start(num_servers_, engine.resume_position());
}

bool NetIngestSource::next_batch(std::vector<LogEvent>& out) {
  return server_.next_batch(out);
}

}  // namespace repl
