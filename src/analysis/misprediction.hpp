// Misprediction impact analysis (Section 8 of the paper).
//
// A request r_i is *mispredicted* when the prediction issued after its
// predecessor r_{p(i)} (the forecast of the gap t_i − t_{p(i)}) was wrong.
// Mispredicted requests split by the realized gap:
//   M1: gap ≤ α·λ          — harmless (stays Type-3);
//   M2: α·λ < gap ≤ λ      — may turn a local serve into a transfer;
//                            penalty ≤ λ each;
//   M3: gap > λ            — may lengthen a regular copy / retype
//                            requests; penalty ≤ (2 − α)·λ each.
//
// The paper bounds the total online cost increase due to mispredictions
// by λ·|M2| + (2 − α)·λ·|M3|, and the induced competitive-ratio increase
// by that quantity over OPTL (inequality (11)).
#pragma once

#include <cstddef>
#include <vector>

#include "core/simulator.hpp"
#include "trace/trace.hpp"

namespace repl {

enum class MispredictionClass { kCorrect, kM1, kM2, kM3 };

struct MispredictionReport {
  std::size_t correct = 0;
  std::size_t m1 = 0;
  std::size_t m2 = 0;
  std::size_t m3 = 0;
  /// Requests whose incoming gap had no covering prediction (first
  /// requests at non-initial servers).
  std::size_t uncovered = 0;

  /// λ·|M2| + (2 − α)·λ·|M3| — the paper's bound on the total online cost
  /// increase caused by all mispredictions.
  double penalty_bound = 0.0;
  /// penalty_bound / OPTL — the bound (11) on the ratio increase.
  double ratio_increase_bound = 0.0;

  std::size_t mispredicted() const { return m1 + m2 + m3; }

  /// Per-request classes, aligned with the trace (uncovered requests are
  /// reported as kCorrect).
  std::vector<MispredictionClass> classes;
};

/// Classifies every request of a DRWP-family run with distrust `alpha`.
MispredictionReport analyze_mispredictions(const SimulationResult& result,
                                           const Trace& trace, double alpha);

}  // namespace repl
