// Exact-cost pinning of Algorithm 1 across the three inter-request-time
// regimes the analysis distinguishes (Proposition 8):
//   gap <= alpha*lambda        — local either way;
//   alpha*lambda < gap <= lambda — local iff predicted within;
//   gap > lambda               — transfer under correct predictions.
// Periodic single-server and two-server traces make the expected costs
// computable by hand.
#include <gtest/gtest.h>

#include "analysis/request_types.hpp"
#include "core/drwp.hpp"
#include "core/simulator.hpp"
#include "predictor/fixed.hpp"
#include "predictor/oracle.hpp"
#include "test_util.hpp"
#include "trace/generators.hpp"

namespace repl {
namespace {

using testing::make_config;

// One server, period p, n requests at p, 2p, ..., np; the dummy r0 at 0
// makes every gap equal to p. lambda and alpha chosen per regime.
Trace periodic_single(double period, int n) {
  std::vector<Request> requests;
  for (int i = 1; i <= n; ++i) {
    requests.push_back(Request{period * i, 0});
  }
  return Trace(1, std::move(requests));
}

TEST(Regimes, ShortGapsAllLocalTypeThree) {
  // gap = 2 <= alpha*lambda = 5: every request Type-3; cost = storage
  // [0, t_n] only.
  const double lambda = 10.0, alpha = 0.5, period = 2.0;
  const int n = 20;
  const SystemConfig config = make_config(1, lambda);
  const Trace trace = periodic_single(period, n);
  OraclePredictor oracle(trace);
  DrwpPolicy policy(alpha);
  const SimulationResult result =
      Simulator(config).run(policy, trace, oracle);
  EXPECT_DOUBLE_EQ(result.total_cost(), period * n);
  const TypeCounts counts = count_request_types(result);
  EXPECT_EQ(counts.counts[3], static_cast<std::size_t>(n));
}

TEST(Regimes, MidGapsLocalUnderCorrectPredictions) {
  // alpha*lambda = 5 < gap = 8 <= lambda = 10: the oracle forecasts
  // "within", so copies last lambda and every request is Type-3 —
  // optimal behaviour (Proposition 8 consistency case).
  const double lambda = 10.0, alpha = 0.5, period = 8.0;
  const int n = 15;
  const SystemConfig config = make_config(1, lambda);
  const Trace trace = periodic_single(period, n);
  OraclePredictor oracle(trace);
  DrwpPolicy policy(alpha);
  const SimulationResult result =
      Simulator(config).run(policy, trace, oracle);
  EXPECT_DOUBLE_EQ(result.total_cost(), period * n);
  EXPECT_EQ(count_request_types(result).counts[3],
            static_cast<std::size_t>(n));
}

TEST(Regimes, MidGapsTransferUnderWrongPredictions) {
  // Same instance, always-"beyond" predictions: copies last only
  // alpha*lambda = 5 < 8, so (with one server) each expiry turns special
  // and requests become Type-4 — the storage cost is unchanged, which is
  // exactly why single-server instances cannot exhibit the robustness
  // gap (the at-least-one-copy rule saves the algorithm).
  const double lambda = 10.0, alpha = 0.5, period = 8.0;
  const int n = 15;
  const SystemConfig config = make_config(1, lambda);
  const Trace trace = periodic_single(period, n);
  AdversarialPredictor wrong(trace);
  DrwpPolicy policy(alpha);
  const SimulationResult result =
      Simulator(config).run(policy, trace, wrong);
  EXPECT_DOUBLE_EQ(result.total_cost(), period * n);
  EXPECT_EQ(count_request_types(result).counts[4],
            static_cast<std::size_t>(n));
}

TEST(Regimes, TwoServerMidGapsShowTheRobustnessGap) {
  // Two servers alternating with same-server gaps in (alpha*lambda,
  // lambda]: correct predictions keep both copies alive (all local);
  // wrong ("beyond") predictions let each copy expire and force
  // transfers — the regime where mispredictions genuinely hurt (M2).
  const double lambda = 10.0, alpha = 0.5;
  const SystemConfig config = make_config(2, lambda);
  // Server 0 at 8, 16, 24...; server 1 at 4, 12, 20... — same-server
  // gaps of 8, interleaved.
  const Trace trace = generate_periodic_trace(2, {8.0, 8.0}, {8.0, 4.0},
                                              80.0);
  OraclePredictor oracle(trace);
  DrwpPolicy good(alpha);
  const SimulationResult with_oracle =
      Simulator(config).run(good, trace, oracle);
  FixedPredictor beyond = always_beyond_predictor();
  DrwpPolicy bad(alpha);
  const SimulationResult with_wrong =
      Simulator(config).run(bad, trace, beyond);
  // Correct predictions: only the unavoidable first transfer to server 1.
  EXPECT_EQ(with_oracle.num_transfers, 1u);
  // Wrong predictions force many transfers and strictly higher cost.
  EXPECT_GT(with_wrong.num_transfers, trace.size() / 2);
  EXPECT_GT(with_wrong.total_cost(), with_oracle.total_cost());
}

TEST(Regimes, LongGapsTransferIsOptimalBehaviour) {
  // gap = 50 > lambda = 10 at two alternating servers: correct
  // predictions give short alpha*lambda copies; requests are served by
  // transfers from the surviving special copy (Type-2), the consistent
  // behaviour for sparse traffic.
  const double lambda = 10.0, alpha = 0.5;
  const SystemConfig config = make_config(2, lambda);
  const Trace trace = generate_periodic_trace(2, {100.0, 100.0},
                                              {50.0, 100.0}, 400.0);
  OraclePredictor oracle(trace);
  DrwpPolicy policy(alpha);
  const SimulationResult result =
      Simulator(config).run(policy, trace, oracle);
  const TypeCounts counts = count_request_types(result);
  // The first request at the initial server is served by its own special
  // copy (Type-4); every later one by a transfer from the surviving
  // special copy at the other server (Type-2).
  EXPECT_EQ(counts.counts[4], 1u);
  EXPECT_EQ(counts.counts[2], trace.size() - 1);
  // Exactly one copy is alive at any instant (regular stubs, then
  // specials), so storage = t_m; transfers = lambda each.
  EXPECT_DOUBLE_EQ(result.total_cost(),
                   trace.duration() +
                       lambda * static_cast<double>(trace.size() - 1));
}

}  // namespace
}  // namespace repl
