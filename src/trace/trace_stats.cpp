#include "trace/trace_stats.hpp"

#include <algorithm>
#include <sstream>

#include "util/stats.hpp"

namespace repl {

double TraceStats::fraction_gaps_within(double threshold) const {
  if (per_server_gaps_.empty()) return 0.0;
  const auto within = static_cast<double>(std::count_if(
      per_server_gaps_.begin(), per_server_gaps_.end(),
      [threshold](double g) { return g <= threshold; }));
  return within / static_cast<double>(per_server_gaps_.size());
}

std::string TraceStats::summary() const {
  std::ostringstream os;
  os << num_requests << " requests over " << duration << " time units on "
     << active_servers << "/" << num_servers << " servers; "
     << "mean global gap " << mean_global_gap << ", mean same-server gap "
     << mean_per_server_gap << " (median " << median_per_server_gap
     << ", p90 " << p90_per_server_gap << ")";
  return os.str();
}

TraceStats compute_trace_stats(const Trace& trace) {
  TraceStats stats;
  stats.num_requests = trace.size();
  stats.num_servers = trace.num_servers();
  stats.active_servers = static_cast<int>(trace.active_servers().size());
  stats.duration = trace.duration();
  stats.per_server_counts.assign(
      static_cast<std::size_t>(trace.num_servers()), 0);
  for (int s = 0; s < trace.num_servers(); ++s) {
    stats.per_server_counts[static_cast<std::size_t>(s)] =
        trace.count_at_server(s);
  }

  RunningStats global_gaps;
  for (std::size_t i = 1; i < trace.size(); ++i) {
    global_gaps.add(trace[i].time - trace[i - 1].time);
  }
  stats.mean_global_gap = global_gaps.mean();

  RunningStats server_gaps;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const int p = trace.prev_same_server(i);
    if (p < 0) continue;
    const double gap = trace[i].time - trace[static_cast<std::size_t>(p)].time;
    server_gaps.add(gap);
    stats.per_server_gaps_.push_back(gap);
  }
  stats.mean_per_server_gap = server_gaps.mean();
  if (!stats.per_server_gaps_.empty()) {
    const auto qs = quantiles(stats.per_server_gaps_, {0.5, 0.9});
    stats.median_per_server_gap = qs[0];
    stats.p90_per_server_gap = qs[1];
  }
  return stats;
}

}  // namespace repl
