// Streaming-engine throughput sweep: synthesizes interleaved
// multi-object event logs to disk (objects swept geometrically up to
// --objects, a fixed --events per row), then serves each log through the
// sharded StreamingEngine at every thread count in --threads, reporting
// events/sec. Per-object traces are never materialized — the stream goes
// binary log → batcher → shards.
//
// Components are spec-driven (api/registry.hpp): --policy/--predictor
// select any registered causal combination, and a comparison grid
// additionally benches adaptive DRWP and ensemble predictors against
// the default wiring on the same log. An object_zipf_s skew sweep
// (--zipf) reports per-shard event-count spread under hot objects.
//
//   ./build/bench/bench_engine                  # 10^4..10^6 objects, 10^7 events
//   ./build/bench/bench_engine --smoke          # CI-sized run + parity check
//   ./build/bench/bench_engine --policy "adaptive(alpha=0.3)"
//       --predictor "ensemble(last_gap,history(ewma=0.3))"
//
// At smoke scale (or with --verify) the engine aggregates are checked
// bit-for-bit against a serial per-object Simulator sweep over the same
// log, with components built from the same specs. A machine-readable
// BENCH_engine.json accompanies the table.
#include <chrono>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "api/experiment.hpp"
#include "api/registry.hpp"
#include "core/simulator.hpp"
#include "engine/engine.hpp"
#include "offline/opt_lower_bound.hpp"
#include "run/parallel_runner.hpp"
#include "trace/event_log.hpp"
#include "trace/stream_gen.hpp"
#include "trace/trace.hpp"
#include "util/cli.hpp"
#include "util/json.hpp"
#include "util/table.hpp"

#ifndef REPL_GIT_DESCRIBE
#define REPL_GIT_DESCRIBE "unknown"
#endif

namespace {

using namespace repl;

struct RowResult {
  std::uint64_t objects = 0;
  std::uint64_t events = 0;
  int threads_requested = 0;
  int threads_used = 1;
  double events_per_sec = 0.0;
  double ingest_seconds = 0.0;
  double finish_seconds = 0.0;
  std::uint64_t steals = 0;
  double online_cost = 0.0;
  double ratio = 1.0;
  bool verified = false;
  bool identical = true;
};

/// One policy×predictor grid point served over the reference log.
struct ComparisonResult {
  std::string policy;
  std::string predictor;
  std::uint64_t events = 0;
  double events_per_sec = 0.0;
  double online_cost = 0.0;
  double ratio = 1.0;
  bool verified = false;
  bool identical = true;
};

/// Mid-stream snapshot cost at one object count: write the checkpoint at
/// half the log, restore it, finish the serve, and require the resumed
/// aggregates to be bit-identical to an uninterrupted run.
struct CheckpointResult {
  std::string policy;
  std::uint64_t objects = 0;
  std::uint64_t at_events = 0;
  std::uint64_t bytes = 0;
  double write_seconds = 0.0;
  double restore_seconds = 0.0;
  bool identical = true;
};

/// Per-shard event spread under one object-popularity skew.
struct ZipfResult {
  double zipf_s = 0.0;
  std::uint64_t objects = 0;
  std::uint64_t events = 0;
  std::size_t shards = 0;
  std::uint64_t shard_events_min = 0;
  std::uint64_t shard_events_max = 0;
  double shard_events_mean = 0.0;
  double shard_events_stddev = 0.0;
  /// max/mean — 1.0 is perfect balance.
  double spread = 0.0;
};

EngineBuilder make_builder(const SystemConfig& config,
                           const EngineOptions& options,
                           const std::string& policy_spec,
                           const std::string& predictor_spec) {
  EngineBuilder builder;
  builder.config(config).options(options);
  builder.policy(policy_spec).predictor(predictor_spec);
  return builder;
}

/// Serial reference for the parity check: per-object Simulator + OPTL
/// sweep in object-id order, components built from the same specs with
/// the same per-object seeds the engine uses (materializes the traces,
/// so only run at verification scale).
bool matches_serial(const std::string& log_path, const SystemConfig& config,
                    const std::string& policy_spec,
                    const std::string& predictor_spec,
                    std::uint64_t base_seed, const EngineMetrics& metrics) {
  std::map<std::uint64_t, std::vector<Request>> per_object;
  {
    EventLogReader reader(log_path);
    LogEvent event;
    while (reader.next(event)) {
      per_object[event.object].push_back(
          Request{event.time, static_cast<int>(event.server)});
    }
  }
  SimulationOptions options;
  options.record_events = false;
  const Simulator simulator(config, options);
  ComponentRegistry& registry = ComponentRegistry::instance();
  const ComponentSpec policy_ast = registry.canonicalize(
      ComponentKind::kPolicy, parse_component_spec(policy_spec));
  const ComponentSpec predictor_ast = registry.canonicalize(
      ComponentKind::kPredictor, parse_component_spec(predictor_spec));
  double online_cost = 0.0;
  double lower_bound = 0.0;
  std::size_t transfers = 0;
  for (auto& [id, requests] : per_object) {
    Trace trace(config.num_servers, std::move(requests));
    BuildContext build;
    build.config = config;
    build.seed = ParallelRunner::object_seed(
        base_seed, static_cast<std::size_t>(id));
    build.trace = &trace;
    const PolicyPtr policy = registry.build_policy(policy_ast, build);
    const PredictorPtr predictor =
        registry.build_predictor(predictor_ast, build);
    const SimulationResult result =
        simulator.run(*policy, trace, *predictor);
    online_cost += result.total_cost();
    transfers += result.num_transfers;
    lower_bound += opt_lower_bound(config, trace);
  }
  return online_cost == metrics.online_cost &&
         lower_bound == metrics.lower_bound &&
         transfers == metrics.num_transfers &&
         per_object.size() == metrics.objects;
}

/// Measures checkpoint write + restore throughput on `log_path` under
/// the given specs, and verifies the resumed serve reproduces
/// `reference` bit for bit (restore goes through EngineBuilder, so the
/// snapshot's recorded specs are also cross-checked).
CheckpointResult measure_checkpoint(const std::string& log_path,
                                    const SystemConfig& config,
                                    const EngineOptions& options,
                                    const std::string& policy_spec,
                                    const std::string& predictor_spec,
                                    const EngineMetrics& reference) {
  const std::string ckpt_path = log_path + ".ckpt";
  const EngineBuilder builder =
      make_builder(config, options, policy_spec, predictor_spec);
  CheckpointResult result;
  result.policy = builder.policy_spec();
  {
    EventLogReader reader(log_path);
    auto engine = builder.build();
    engine->bind_log(reader.header());
    // Drain half the log, snapshot, abandon (the simulated crash).
    const std::uint64_t half =
        reader.header().num_events == EventLogHeader::kUnknownCount
            ? 0
            : reader.header().num_events / 2;
    std::vector<LogEvent> batch;
    while (engine->stats().events_ingested < half &&
           reader.read_batch(batch, std::size_t{1} << 16) > 0) {
      engine->ingest(batch);
    }
    result.at_events = engine->stats().events_ingested;
    const auto write_start = std::chrono::steady_clock::now();
    engine->checkpoint(ckpt_path);
    result.write_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      write_start)
            .count();
  }
  result.bytes = std::filesystem::file_size(ckpt_path);

  const auto restore_start = std::chrono::steady_clock::now();
  auto resumed = builder.restore(ckpt_path);
  result.restore_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    restore_start)
          .count();
  result.objects = resumed->object_count();

  EventLogReader reader(log_path);
  const EngineMetrics metrics = resumed->serve(reader);
  result.identical = metrics.online_cost == reference.online_cost &&
                     metrics.lower_bound == reference.lower_bound &&
                     metrics.num_transfers == reference.num_transfers &&
                     metrics.num_local == reference.num_local &&
                     metrics.events == reference.events &&
                     metrics.objects == reference.objects;
  std::error_code ec;
  std::filesystem::remove(ckpt_path, ec);
  return result;
}

ZipfResult shard_spread(double zipf_s, const EngineMetrics& metrics) {
  ZipfResult result;
  result.zipf_s = zipf_s;
  result.objects = metrics.objects;
  result.events = metrics.events;
  result.shards = metrics.shards.size();
  if (metrics.shards.empty()) return result;
  std::uint64_t min = ~std::uint64_t{0};
  std::uint64_t max = 0;
  double sum = 0.0;
  for (const EngineShardMetrics& shard : metrics.shards) {
    const std::uint64_t events = shard.events;
    min = std::min(min, events);
    max = std::max(max, events);
    sum += static_cast<double>(events);
  }
  const double mean = sum / static_cast<double>(metrics.shards.size());
  double var = 0.0;
  for (const EngineShardMetrics& shard : metrics.shards) {
    const double d = static_cast<double>(shard.events) - mean;
    var += d * d;
  }
  var /= static_cast<double>(metrics.shards.size());
  result.shard_events_min = min;
  result.shard_events_max = max;
  result.shard_events_mean = mean;
  result.shard_events_stddev = std::sqrt(var);
  result.spread = mean > 0.0 ? static_cast<double>(max) / mean : 1.0;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("bench_engine",
                "streaming engine throughput sweep over binary event logs");
  cli.add_flag("min-objects", "10000", "smallest object count in the sweep");
  cli.add_flag("objects", "1000000", "largest object count in the sweep");
  cli.add_flag("events", "10000000", "events per generated log");
  cli.add_flag("servers", "10", "servers in the system");
  cli.add_flag("shards", "256", "object-table shards");
  cli.add_flag("batch", "65536", "events per ingest batch");
  cli.add_flag("threads", "1,2,4,8", "comma-separated thread counts "
               "(0 = all hardware threads)");
  cli.add_flag("lambda", "10", "transfer cost λ");
  cli.add_flag("alpha", "0.3", "DRWP α (used when --policy is not given)");
  cli.add_flag("policy", "",
               "policy component spec for the main sweep "
               "(default: drwp(alpha=<alpha>))");
  cli.add_flag("predictor", "",
               "predictor component spec for the main sweep "
               "(default: last_gap)");
  cli.add_flag("zipf", "0,0.8,1.2",
               "object_zipf_s skew sweep at the smallest object count "
               "(per-shard event spread; empty disables)");
  cli.add_flag("seed", "42", "workload seed");
  cli.add_flag("json", "BENCH_engine.json", "machine-readable output path");
  cli.add_bool_flag("verify", "also run the serial per-object Simulator "
                    "sweep and require bit-identical aggregates");
  cli.add_bool_flag("checkpoint", "also measure checkpoint write/restore "
                    "throughput at half of each log (resume parity checked)");
  cli.add_bool_flag("compare", "also bench a spec grid (adaptive DRWP, "
                    "ensemble predictors, ...) on the smallest log");
  cli.add_bool_flag("keep-logs", "keep the generated event logs on disk");
  cli.add_bool_flag("smoke", "CI-sized run: 2·10^3 objects, 2·10^5 events, "
                    "threads 1 and 4, verification + comparison grid on");
  if (!cli.parse(argc, argv)) return 0;

  // Bounds-checked count flags (no narrowing casts from get_int).
  std::size_t min_objects = cli.get_size_t("min-objects", 1, 100000000);
  std::size_t max_objects = cli.get_size_t("objects", 1, 100000000);
  std::uint64_t events = cli.get_size_t("events", 1);
  const std::size_t shards = cli.get_size_t("shards", 1, 1 << 20);
  const std::size_t batch = cli.get_size_t("batch", 1);
  const int servers = static_cast<int>(cli.get_size_t("servers", 1, 4096));
  const double lambda = cli.get_double("lambda");
  const std::uint64_t seed = cli.get_uint64("seed");
  const bool smoke = cli.get_bool("smoke");
  bool verify = cli.get_bool("verify") || smoke;
  const bool checkpointing = cli.get_bool("checkpoint") || smoke;
  const bool comparing = cli.get_bool("compare") || smoke;
  std::vector<int> thread_counts;
  for (const double t : cli.get_double_list("threads")) {
    thread_counts.push_back(static_cast<int>(t));
  }
  std::vector<double> zipf_values;
  if (!cli.get_string("zipf").empty()) {
    zipf_values = cli.get_double_list("zipf");
  }
  if (smoke) {
    min_objects = 2000;
    max_objects = 2000;
    events = 200000;
    thread_counts = {1, 4};
  }
  if (min_objects > max_objects || thread_counts.empty()) {
    std::cerr << "error: need --min-objects <= --objects and a non-empty "
                 "--threads list\n";
    return EXIT_FAILURE;
  }

  std::string policy_spec = cli.get_string("policy");
  if (policy_spec.empty()) {
    policy_spec = "drwp(alpha=" + cli.get_string("alpha") + ")";
  }
  std::string predictor_spec = cli.get_string("predictor");
  if (predictor_spec.empty()) predictor_spec = "last_gap";

  SystemConfig config;
  config.num_servers = servers;
  config.transfer_cost = lambda;

  // Fail on a bad spec before generating gigabytes of workload; also
  // canonicalizes the strings used in reports and JSON.
  try {
    ComponentRegistry& registry = ComponentRegistry::instance();
    policy_spec = registry.canonical_string(ComponentKind::kPolicy,
                                            policy_spec);
    predictor_spec = registry.canonical_string(ComponentKind::kPredictor,
                                               predictor_spec);
    EngineBuilder probe;
    probe.config(config);
    probe.policy(policy_spec).predictor(predictor_spec);
  } catch (const SpecError& e) {
    std::cerr << "error: " << e.what() << "\n";
    return EXIT_FAILURE;
  }
  std::cout << "components: " << policy_spec << " x " << predictor_spec
            << "\n";

  // The grid the ROADMAP asks for: adaptive DRWP and ensemble
  // predictors wired through the registry, against the sweep's own
  // combination and the prediction-free baseline.
  std::vector<ExperimentSpec> grid;
  if (comparing) {
    const std::string alpha_arg = "(alpha=" + cli.get_string("alpha") + ")";
    grid.push_back(ExperimentSpec{policy_spec, predictor_spec});
    grid.push_back(ExperimentSpec{"adaptive" + alpha_arg, "last_gap"});
    grid.push_back(ExperimentSpec{
        "adaptive" + alpha_arg, "ensemble(last_gap,history(ewma=0.3))"});
    grid.push_back(ExperimentSpec{
        "drwp" + alpha_arg, "ensemble(last_gap,history(ewma=0.3))"});
    grid.push_back(ExperimentSpec{"drwp" + alpha_arg, "history(ewma=0.3)"});
    grid.push_back(ExperimentSpec{"conventional", "fixed(within=true)"});
  }

  Table table({"objects", "events", "threads", "used", "events/s",
               "ingest_s", "finish_s", "steals", "cost", "ratio",
               "identical"});
  std::vector<RowResult> rows;
  std::vector<ComparisonResult> comparison_rows;
  std::vector<CheckpointResult> checkpoint_rows;
  std::vector<ZipfResult> zipf_rows;
  bool all_identical = true;

  for (std::size_t objects = min_objects;;) {
    // One log per object count; every thread count serves the same file.
    StreamWorkloadConfig workload;
    workload.num_objects = objects;
    workload.num_servers = servers;
    workload.rate = static_cast<double>(objects) / 64.0;
    workload.max_events = events;
    const std::string log_path =
        (std::filesystem::temp_directory_path() /
         ("bench_engine_" + std::to_string(objects) + ".evlog"))
            .string();
    std::cerr << "generating " << events << " events over " << objects
              << " objects -> " << log_path << "\n";
    generate_event_log(workload, seed, log_path);

    EngineMetrics last_metrics;
    EngineOptions last_options;
    for (const int threads : thread_counts) {
      EngineOptions options;
      options.num_shards = shards;
      options.num_threads = threads;
      options.base_seed = seed;

      EventLogReader reader(log_path);
      auto engine = make_builder(config, options, policy_spec,
                                 predictor_spec)
                        .build();
      const EngineMetrics metrics = engine->serve(reader, batch);
      const EngineStats& stats = engine->stats();
      last_metrics = metrics;
      last_options = options;

      RowResult row;
      row.objects = objects;
      row.events = stats.events_ingested;
      row.threads_requested = threads;
      row.threads_used = stats.threads_used;
      row.ingest_seconds = stats.ingest_seconds;
      row.finish_seconds = stats.finish_seconds;
      const double wall = stats.ingest_seconds + stats.finish_seconds;
      row.events_per_sec =
          wall > 0.0 ? static_cast<double>(row.events) / wall : 0.0;
      row.steals = stats.steals;
      row.online_cost = metrics.online_cost;
      row.ratio = metrics.ratio();
      if (verify) {
        row.verified = true;
        row.identical = matches_serial(log_path, config, policy_spec,
                                       predictor_spec, seed, metrics);
        all_identical = all_identical && row.identical;
      }
      rows.push_back(row);

      table.add_row({Table::cell(row.objects), Table::cell(row.events),
                     Table::cell(row.threads_requested),
                     Table::cell(row.threads_used),
                     Table::cell(row.events_per_sec, 0),
                     Table::cell(row.ingest_seconds, 3),
                     Table::cell(row.finish_seconds, 3),
                     Table::cell(row.steals),
                     Table::cell(row.online_cost, 1),
                     Table::cell(row.ratio, 4),
                     row.verified ? (row.identical ? "yes" : "NO") : "-"});
    }

    // Comparison grid runs once, on the smallest log (cost scales with
    // the grid, not the sweep). Its first point is the main sweep's own
    // combination, so its checkpoint measurement doubles as that log's
    // checkpoint row — no duplicate half-log serve.
    const bool grid_here = objects == min_objects && !grid.empty();
    if (grid_here) {
      for (const ExperimentSpec& point : grid) {
        const EngineBuilder builder = make_builder(
            config, last_options, point.policy, point.predictor);
        const bool is_default = builder.policy_spec() == policy_spec &&
                                builder.predictor_spec() == predictor_spec;
        EventLogReader reader(log_path);
        auto engine = builder.build();
        const EngineMetrics metrics = engine->serve(reader, batch);
        const EngineStats& stats = engine->stats();
        ComparisonResult comparison;
        comparison.policy = builder.policy_spec();
        comparison.predictor = builder.predictor_spec();
        comparison.events = stats.events_ingested;
        const double wall = stats.ingest_seconds + stats.finish_seconds;
        comparison.events_per_sec =
            wall > 0.0 ? static_cast<double>(comparison.events) / wall
                       : 0.0;
        comparison.online_cost = metrics.online_cost;
        comparison.ratio = metrics.ratio();
        if (verify) {
          comparison.verified = true;
          // The main sweep already ran the serial reference for its own
          // combination on this log — reuse that verdict.
          comparison.identical =
              is_default ? rows.back().identical
                         : matches_serial(log_path, config, point.policy,
                                          point.predictor, seed, metrics);
          all_identical = all_identical && comparison.identical;
        }
        if (checkpointing) {
          // Engine-level snapshot coverage for the non-default wirings:
          // every grid point must resume bit-identically.
          const CheckpointResult ck = measure_checkpoint(
              log_path, config, last_options, point.policy,
              point.predictor, metrics);
          all_identical = all_identical && ck.identical;
          comparison.identical = comparison.identical && ck.identical;
          checkpoint_rows.push_back(ck);
        }
        comparison_rows.push_back(comparison);
      }
    } else if (checkpointing) {
      const CheckpointResult ck = measure_checkpoint(
          log_path, config, last_options, policy_spec, predictor_spec,
          last_metrics);
      all_identical = all_identical && ck.identical;
      checkpoint_rows.push_back(ck);
    }

    if (!cli.get_bool("keep-logs")) {
      std::error_code ec;
      std::filesystem::remove(log_path, ec);
    }
    if (objects >= max_objects) break;
    objects = std::min(objects * 10, max_objects);
  }

  // Skew sweep: same event budget, increasingly hot objects; reports
  // how unevenly events land across shards (the load-balance risk of
  // popularity skew).
  for (const double zipf_s : zipf_values) {
    StreamWorkloadConfig workload;
    workload.num_objects = min_objects;
    workload.num_servers = servers;
    workload.rate = static_cast<double>(min_objects) / 64.0;
    workload.max_events = events;
    workload.object_zipf_s = zipf_s;
    std::ostringstream name;
    name << "bench_engine_zipf_" << zipf_s << ".evlog";
    const std::string log_path =
        (std::filesystem::temp_directory_path() / name.str()).string();
    std::cerr << "generating zipf s=" << zipf_s << " log -> " << log_path
              << "\n";
    generate_event_log(workload, seed + 1, log_path);
    EngineOptions options;
    options.num_shards = shards;
    options.num_threads = thread_counts.back();
    options.base_seed = seed;
    EventLogReader reader(log_path);
    auto engine =
        make_builder(config, options, policy_spec, predictor_spec).build();
    const EngineMetrics metrics = engine->serve(reader, batch);
    zipf_rows.push_back(shard_spread(zipf_s, metrics));
    if (!cli.get_bool("keep-logs")) {
      std::error_code ec;
      std::filesystem::remove(log_path, ec);
    }
  }

  std::cout << table.str() << "\n";

  if (!comparison_rows.empty()) {
    Table cmp_table({"policy", "predictor", "events/s", "cost", "ratio",
                     "identical"});
    for (const ComparisonResult& row : comparison_rows) {
      cmp_table.add_row(
          {row.policy, row.predictor, Table::cell(row.events_per_sec, 0),
           Table::cell(row.online_cost, 1), Table::cell(row.ratio, 4),
           row.verified ? (row.identical ? "yes" : "NO") : "-"});
    }
    std::cout << cmp_table.str() << "\n";
  }

  if (!checkpoint_rows.empty()) {
    Table ck_table({"policy", "objects", "ckpt@events", "bytes", "write_s",
                    "write_MB/s", "restore_s", "restore_MB/s", "identical"});
    for (const CheckpointResult& ck : checkpoint_rows) {
      const double mb = static_cast<double>(ck.bytes) / (1024.0 * 1024.0);
      ck_table.add_row(
          {ck.policy, Table::cell(ck.objects), Table::cell(ck.at_events),
           Table::cell(ck.bytes),
           Table::cell(ck.write_seconds, 3),
           Table::cell(ck.write_seconds > 0.0 ? mb / ck.write_seconds : 0.0,
                       1),
           Table::cell(ck.restore_seconds, 3),
           Table::cell(
               ck.restore_seconds > 0.0 ? mb / ck.restore_seconds : 0.0, 1),
           ck.identical ? "yes" : "NO"});
    }
    std::cout << ck_table.str() << "\n";
  }

  if (!zipf_rows.empty()) {
    Table z_table({"zipf_s", "objects", "events", "shards", "min", "max",
                   "mean", "stddev", "max/mean"});
    for (const ZipfResult& z : zipf_rows) {
      z_table.add_row({Table::cell(z.zipf_s, 2), Table::cell(z.objects),
                       Table::cell(z.events),
                       Table::cell(static_cast<std::uint64_t>(z.shards)),
                       Table::cell(z.shard_events_min),
                       Table::cell(z.shard_events_max),
                       Table::cell(z.shard_events_mean, 1),
                       Table::cell(z.shard_events_stddev, 1),
                       Table::cell(z.spread, 3)});
    }
    std::cout << z_table.str() << "\n";
  }

  JsonWriter json;
  json.begin_object();
  json.key("bench").value("bench_engine");
  json.key("git_describe").value(REPL_GIT_DESCRIBE);
  json.key("smoke").value(smoke);
  json.key("servers").value(servers);
  json.key("shards").value(static_cast<std::uint64_t>(shards));
  json.key("lambda").value(lambda);
  json.key("policy").value(policy_spec);
  json.key("predictor").value(predictor_spec);
  json.key("rows").begin_array();
  for (const RowResult& row : rows) {
    json.begin_object();
    json.key("objects").value(row.objects);
    json.key("events").value(row.events);
    json.key("threads").value(row.threads_requested);
    json.key("threads_used").value(row.threads_used);
    json.key("events_per_second").value(row.events_per_sec);
    json.key("ingest_seconds").value(row.ingest_seconds);
    json.key("finish_seconds").value(row.finish_seconds);
    json.key("steals").value(row.steals);
    json.key("online_cost").value(row.online_cost);
    json.key("ratio").value(row.ratio);
    json.key("verified").value(row.verified);
    json.key("identical").value(row.identical);
    json.end_object();
  }
  json.end_array();
  json.key("comparison").begin_array();
  for (const ComparisonResult& row : comparison_rows) {
    json.begin_object();
    json.key("policy").value(row.policy);
    json.key("predictor").value(row.predictor);
    json.key("events").value(row.events);
    json.key("events_per_second").value(row.events_per_sec);
    json.key("online_cost").value(row.online_cost);
    json.key("ratio").value(row.ratio);
    json.key("verified").value(row.verified);
    json.key("identical").value(row.identical);
    json.end_object();
  }
  json.end_array();
  json.key("checkpoints").begin_array();
  for (const CheckpointResult& ck : checkpoint_rows) {
    json.begin_object();
    json.key("policy").value(ck.policy);
    json.key("objects").value(ck.objects);
    json.key("at_events").value(ck.at_events);
    json.key("bytes").value(ck.bytes);
    json.key("write_seconds").value(ck.write_seconds);
    json.key("restore_seconds").value(ck.restore_seconds);
    json.key("identical").value(ck.identical);
    json.end_object();
  }
  json.end_array();
  json.key("zipf_sweep").begin_array();
  for (const ZipfResult& z : zipf_rows) {
    json.begin_object();
    json.key("zipf_s").value(z.zipf_s);
    json.key("objects").value(z.objects);
    json.key("events").value(z.events);
    json.key("shards").value(static_cast<std::uint64_t>(z.shards));
    json.key("shard_events_min").value(z.shard_events_min);
    json.key("shard_events_max").value(z.shard_events_max);
    json.key("shard_events_mean").value(z.shard_events_mean);
    json.key("shard_events_stddev").value(z.shard_events_stddev);
    json.key("spread").value(z.spread);
    json.end_object();
  }
  json.end_array();
  json.end_object();

  const std::string json_path = cli.get_string("json");
  std::ofstream out(json_path);
  out << json.str() << "\n";
  out.flush();
  if (!out) {
    std::cerr << "error: failed to write " << json_path << "\n";
    return EXIT_FAILURE;
  }
  std::cout << "wrote " << json_path << "\n";

  if (!all_identical) {
    std::cerr << "FAIL: engine aggregates diverged (serial-sweep parity or "
                 "checkpoint resume parity)\n";
    return EXIT_FAILURE;
  }
  if (verify) {
    std::cout << "engine aggregates bit-identical to the serial "
                 "per-object sweep (every spec combination)\n";
  }
  if (checkpointing) {
    std::cout << "checkpoint resume aggregates bit-identical to the "
                 "uninterrupted serve\n";
  }
  return EXIT_SUCCESS;
}
