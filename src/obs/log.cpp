#include "obs/log.hpp"

#include <time.h>

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <map>
#include <mutex>
#include <stdexcept>

namespace repl::obs {

namespace {

/// All mutable logger state behind one mutex. Log call rates are low
/// (connection events, respawns, periodic stats) — contention is not a
/// concern; the hot question is only `enabled`, answered by the relaxed
/// atomic floor below without taking the lock in the common
/// no-overrides case.
struct LoggerState {
  std::mutex mu;
  LogLevel default_level = LogLevel::kInfo;
  std::map<std::string, LogLevel> component_levels;
  bool json = false;
  std::function<void(const std::string&)> sink;

  /// Minimum of the default and every override: a level below this floor
  /// is disabled for every component, checked lock-free.
  std::atomic<int> floor{static_cast<int>(LogLevel::kInfo)};
  /// True once any component override exists (forces the map lookup).
  std::atomic<bool> has_overrides{false};

  void refresh_floor_locked() {
    int f = static_cast<int>(default_level);
    for (const auto& [component, level] : component_levels) {
      (void)component;
      f = std::min(f, static_cast<int>(level));
    }
    floor.store(f, std::memory_order_relaxed);
    has_overrides.store(!component_levels.empty(), std::memory_order_relaxed);
  }
};

LoggerState& state() {
  static LoggerState* s = new LoggerState();
  return *s;
}

std::string lower(const std::string& text) {
  std::string out = text;
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string trim(const std::string& text) {
  std::size_t b = 0;
  std::size_t e = text.size();
  while (b < e && std::isspace(static_cast<unsigned char>(text[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(text[e - 1]))) --e;
  return text.substr(b, e - b);
}

/// UTC wall-clock timestamp with millisecond precision, ISO-8601.
std::string timestamp() {
  const auto now = std::chrono::system_clock::now();
  const std::time_t secs = std::chrono::system_clock::to_time_t(now);
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      now.time_since_epoch())
                      .count() %
                  1000;
  struct tm tm_utc;
  gmtime_r(&secs, &tm_utc);
  char buf[72];  // worst-case %04d expansions stay in bounds
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                tm_utc.tm_year + 1900, tm_utc.tm_mon + 1, tm_utc.tm_mday,
                tm_utc.tm_hour, tm_utc.tm_min, tm_utc.tm_sec,
                static_cast<int>(ms));
  return buf;
}

void append_json_string(std::string& out, const std::string& text) {
  out += '"';
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

}  // namespace

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "trace";
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
    case LogLevel::kOff: return "off";
  }
  return "?";
}

LogLevel parse_log_level(const std::string& name) {
  const std::string n = lower(trim(name));
  if (n == "trace") return LogLevel::kTrace;
  if (n == "debug") return LogLevel::kDebug;
  if (n == "info") return LogLevel::kInfo;
  if (n == "warn" || n == "warning") return LogLevel::kWarn;
  if (n == "error") return LogLevel::kError;
  if (n == "off" || n == "none") return LogLevel::kOff;
  throw std::invalid_argument("unknown log level \"" + name +
                              "\" (want trace|debug|info|warn|error|off)");
}

Logger& Logger::global() {
  static Logger* logger = new Logger();
  return *logger;
}

void Logger::configure(const std::string& spec) {
  // Parse fully before applying: a malformed element must not leave the
  // logger half-configured.
  LogLevel default_level = LogLevel::kInfo;
  bool saw_default = false;
  std::map<std::string, LogLevel> overrides;
  std::size_t at = 0;
  while (at <= spec.size()) {
    const std::size_t comma = std::min(spec.find(',', at), spec.size());
    const std::string element = trim(spec.substr(at, comma - at));
    at = comma + 1;
    if (element.empty()) continue;
    const std::size_t eq = element.find('=');
    if (eq == std::string::npos) {
      if (saw_default) {
        throw std::invalid_argument("log spec \"" + spec +
                                    "\" sets the default level twice");
      }
      default_level = parse_log_level(element);
      saw_default = true;
    } else {
      const std::string component = trim(element.substr(0, eq));
      if (component.empty()) {
        throw std::invalid_argument("log spec element \"" + element +
                                    "\" names no component");
      }
      overrides[component] = parse_log_level(element.substr(eq + 1));
    }
  }
  LoggerState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  if (saw_default) s.default_level = default_level;
  for (const auto& [component, level] : overrides) {
    s.component_levels[component] = level;
  }
  s.refresh_floor_locked();
}

void Logger::set_default_level(LogLevel level) {
  LoggerState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  s.default_level = level;
  s.refresh_floor_locked();
}

void Logger::set_component_level(const std::string& component,
                                 LogLevel level) {
  LoggerState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  s.component_levels[component] = level;
  s.refresh_floor_locked();
}

void Logger::set_json(bool json) {
  LoggerState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  s.json = json;
}

bool Logger::json() const {
  LoggerState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  return s.json;
}

void Logger::set_sink(std::function<void(const std::string&)> sink) {
  LoggerState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  s.sink = std::move(sink);
}

void Logger::reset() {
  LoggerState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  s.default_level = LogLevel::kInfo;
  s.component_levels.clear();
  s.json = false;
  s.sink = nullptr;
  s.refresh_floor_locked();
}

bool Logger::enabled(LogLevel level, const char* component) const {
  LoggerState& s = state();
  if (static_cast<int>(level) < s.floor.load(std::memory_order_relaxed)) {
    return false;
  }
  if (!s.has_overrides.load(std::memory_order_relaxed)) return true;
  std::lock_guard<std::mutex> lock(s.mu);
  const auto it = s.component_levels.find(component);
  const LogLevel threshold =
      it == s.component_levels.end() ? s.default_level : it->second;
  return static_cast<int>(level) >= static_cast<int>(threshold);
}

void Logger::log(LogLevel level, const char* component,
                 const std::string& message, const LogFields& fields) {
  if (!enabled(level, component)) return;
  LoggerState& s = state();
  std::string line;
  const std::string ts = timestamp();
  bool json;
  std::function<void(const std::string&)> sink;
  {
    std::lock_guard<std::mutex> lock(s.mu);
    json = s.json;
    sink = s.sink;
  }
  if (json) {
    line = "{\"ts\":";
    append_json_string(line, ts);
    line += ",\"level\":";
    append_json_string(line, log_level_name(level));
    line += ",\"component\":";
    append_json_string(line, component);
    line += ",\"msg\":";
    append_json_string(line, message);
    for (const auto& [key, value] : fields) {
      line += ',';
      append_json_string(line, key);
      line += ':';
      append_json_string(line, value);
    }
    line += '}';
  } else {
    line = ts;
    line += ' ';
    std::string level_text = log_level_name(level);
    for (char& c : level_text) {
      c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
    }
    line += level_text;
    line.append(level_text.size() < 5 ? 6 - level_text.size() : 1, ' ');
    line += component;
    line += ' ';
    line += message;
    for (const auto& [key, value] : fields) {
      line += ' ';
      line += key;
      line += '=';
      line += value;
    }
  }
  if (sink) {
    sink(line);
    return;
  }
  // One fputs per line: POSIX guarantees stderr writes of modest size
  // land unsplit, so concurrent processes sharing the fd (coordinator +
  // inherited worker stderr) interleave by whole lines.
  line += '\n';
  std::fputs(line.c_str(), stderr);
  std::fflush(stderr);
}

}  // namespace repl::obs
