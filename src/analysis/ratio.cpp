#include "analysis/ratio.hpp"

#include "offline/opt_dp.hpp"
#include "offline/opt_lower_bound.hpp"
#include "util/check.hpp"

namespace repl {

RatioReport evaluate_policy(const SystemConfig& config,
                            ReplicationPolicy& policy, const Trace& trace,
                            Predictor& predictor, double opt_cost) {
  if (opt_cost < 0.0) opt_cost = optimal_offline_cost(config, trace);
  SimulationOptions options;
  options.record_events = false;
  const SimulationResult result =
      Simulator(config, options).run(policy, trace, predictor);

  RatioReport report;
  report.online_cost = result.total_cost();
  report.opt_cost = opt_cost;
  report.opt_lower =
      config.storage_rates.empty() ? opt_lower_bound(config, trace) : 0.0;
  report.ratio = opt_cost > 0.0
                     ? report.online_cost / opt_cost
                     : (report.online_cost > 0.0
                            ? std::numeric_limits<double>::infinity()
                            : 1.0);
  report.num_transfers = result.num_transfers;
  report.num_local = result.num_local;
  report.policy_name = result.policy_name;
  report.predictor_name = result.predictor_name;
  return report;
}

}  // namespace repl
