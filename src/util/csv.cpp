#include "util/csv.hpp"

#include <fstream>
#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace repl {

namespace {

bool needs_quoting(const std::string& field) {
  return field.find_first_of(",\"\n\r") != std::string::npos;
}

}  // namespace

void write_csv_row(std::ostream& os, const CsvRow& row) {
  for (std::size_t i = 0; i < row.size(); ++i) {
    if (i) os << ',';
    const std::string& field = row[i];
    if (needs_quoting(field)) {
      os << '"';
      for (char c : field) {
        if (c == '"') os << "\"\"";
        else if (c != '\r') os << c;
      }
      os << '"';
    } else {
      os << field;
    }
  }
  os << '\n';
}

std::vector<CsvRow> parse_csv(const std::string& text) {
  std::vector<CsvRow> rows;
  CsvRow row;
  std::string field;
  bool in_quotes = false;
  bool field_started = false;

  auto end_field = [&] {
    row.push_back(std::move(field));
    field.clear();
    field_started = false;
  };
  auto end_row = [&] {
    end_field();
    rows.push_back(std::move(row));
    row.clear();
  };

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else if (c != '\r') {
        field.push_back(c);
      }
      continue;
    }
    switch (c) {
      case '"':
        in_quotes = true;
        field_started = true;
        break;
      case ',':
        end_field();
        field_started = true;  // next field exists even if empty
        break;
      case '\n':
        if (!field.empty() || field_started || !row.empty()) end_row();
        break;
      case '\r':
        break;
      default:
        field.push_back(c);
        field_started = true;
        break;
    }
  }
  if (in_quotes) throw std::invalid_argument("csv: unterminated quote");
  if (!field.empty() || field_started || !row.empty()) end_row();
  return rows;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open file for reading: " + path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

void write_file(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot open file for writing: " + path);
  out << contents;
  if (!out) throw std::runtime_error("write failed: " + path);
}

std::string format_double(double v) {
  std::ostringstream os;
  os.precision(std::numeric_limits<double>::max_digits10);
  os << v;
  return os.str();
}

}  // namespace repl
