// Algorithm 1 of the paper: Dynamic Replication With Predictions (DRWP).
//
// Per-server state: the intended expiry E_j of the regular copy and the
// keep-tag K_j marking a special copy (a copy kept beyond its intended
// duration because it is the only copy in the system). On each request the
// server keeps its copy for an intended duration of
//
//      λ    if the next local request is predicted within λ,
//      α·λ  otherwise,
//
// where α ∈ (0, 1] is the distrust hyper-parameter. When a regular copy
// expires it is dropped, unless it is the only copy, in which case it
// becomes special and survives until the next request: served locally it
// turns regular again; serving a transfer it is dropped right after
// (Algorithm 1 lines 15–19).
//
// Proven bounds (reproduced by the test suite empirically):
// (5+α)/3-consistent and (1 + 1/α)-robust.
#pragma once

#include <cstdint>
#include <limits>
#include <queue>
#include <vector>

#include "core/policy.hpp"

namespace repl {

class DrwpPolicy : public ReplicationPolicy {
 public:
  /// `alpha` > 0. alpha -> 0 trusts predictions fully; alpha = 1 ignores
  /// them (both branches give duration λ); the proven bounds assume
  /// alpha in (0, 1], but larger values run fine (copies on "beyond"
  /// predictions are held longer than λ) and the experiment grid sweeps
  /// them.
  explicit DrwpPolicy(double alpha);

  void reset(const SystemConfig& config, const Prediction& pred0,
             EventSink& sink) override;
  void advance_to(double time, EventSink& sink) override;
  ServeAction on_request(int server, double time, const Prediction& pred,
                         EventSink& sink) override;
  double next_transition_time() const override;
  bool holds(int server) const override;
  int copy_count() const override { return copy_count_; }
  std::string name() const override;
  std::unique_ptr<ReplicationPolicy> clone() const override;

  /// Serializes the per-server automaton state (E_j, K_j, bookkeeping)
  /// and the clock; the expiry heap is rebuilt from it on load, which
  /// drops stale entries for free. alpha and the server count are
  /// written as cross-checks only.
  void save_state(StateWriter& out) const override;
  void load_state(StateReader& in) override;

  double alpha() const { return alpha_; }
  double lambda() const { return config_.transfer_cost; }

  /// Intended expiry of `server`'s regular copy (+inf for a special copy,
  /// -inf when no copy is held). Exposed for tests and the adversary.
  double intended_expiry(int server) const;
  bool is_special(int server) const;

 protected:
  /// Everything known about the request just served, before the new
  /// intended duration is chosen. Subclasses (adapted Algorithm 1,
  /// weighted extension) override choose_duration.
  struct ServeContext {
    int server = -1;
    double time = 0.0;
    bool local = false;
    bool source_special = false;
    double special_since = std::numeric_limits<double>::infinity();
    /// Intended duration set after the preceding request at this server
    /// (the analysis' l_i); NaN if this is the server's first request.
    double prev_intended = std::numeric_limits<double>::quiet_NaN();
    /// Time of the preceding request at this server (0 for the initial
    /// server's dummy r0); NaN if none.
    double prev_request_time = std::numeric_limits<double>::quiet_NaN();
  };

  /// Default: pred.within_lambda ? λ : α·λ (Algorithm 1 lines 10–13).
  virtual double choose_duration(const Prediction& pred,
                                 const ServeContext& ctx);

  const SystemConfig& config() const { return config_; }

 private:
  struct HeapEntry {
    double time;
    int server;
    std::uint64_t generation;
    friend bool operator>(const HeapEntry& a, const HeapEntry& b) {
      if (a.time != b.time) return a.time > b.time;
      return a.server > b.server;  // ties: lower server index first
    }
  };

  struct ServerState {
    bool has_copy = false;
    bool special = false;  // K_j
    double expiry = -std::numeric_limits<double>::infinity();  // E_j
    double special_since = std::numeric_limits<double>::infinity();
    double last_intended = std::numeric_limits<double>::quiet_NaN();
    double last_request_time = std::numeric_limits<double>::quiet_NaN();
    std::uint64_t generation = 0;
  };

  void set_intended(int server, double time, double duration,
                    EventSink& sink);
  void process_expiry(int server, double time, EventSink& sink);
  void purge_stale_heap() const;
  int pick_transfer_source(int requester) const;

  double alpha_;
  SystemConfig config_;
  std::vector<ServerState> servers_;
  int copy_count_ = 0;
  double now_ = 0.0;
  mutable std::priority_queue<HeapEntry, std::vector<HeapEntry>,
                              std::greater<HeapEntry>>
      expiries_;
};

/// The prediction-less 2-competitive baseline: Algorithm 1 with α = 1
/// (both prediction branches yield duration λ, so forecasts are ignored).
/// The paper notes this matches the best possible deterministic online
/// ratio for the problem.
class ConventionalPolicy final : public DrwpPolicy {
 public:
  ConventionalPolicy() : DrwpPolicy(1.0) {}
  std::string name() const override { return "conventional"; }
  std::unique_ptr<ReplicationPolicy> clone() const override {
    return std::make_unique<ConventionalPolicy>(*this);
  }
};

}  // namespace repl
