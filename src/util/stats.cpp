#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace repl {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::mean() const { return n_ == 0 ? 0.0 : mean_; }

double RunningStats::variance() const {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const {
  REPL_REQUIRE(n_ > 0);
  return min_;
}

double RunningStats::max() const {
  REPL_REQUIRE(n_ > 0);
  return max_;
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double quantile(std::vector<double> values, double q) {
  REPL_REQUIRE(!values.empty());
  REPL_REQUIRE(q >= 0.0 && q <= 1.0);
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] + frac * (values[hi] - values[lo]);
}

std::vector<double> quantiles(std::vector<double> values,
                              const std::vector<double>& qs) {
  REPL_REQUIRE(!values.empty());
  std::sort(values.begin(), values.end());
  std::vector<double> out;
  out.reserve(qs.size());
  for (double q : qs) {
    REPL_REQUIRE(q >= 0.0 && q <= 1.0);
    const double pos = q * static_cast<double>(values.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, values.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    out.push_back(values[lo] + frac * (values[hi] - values[lo]));
  }
  return out;
}

double pearson_correlation(const std::vector<double>& xs,
                           const std::vector<double>& ys) {
  REPL_REQUIRE(xs.size() == ys.size());
  REPL_REQUIRE(xs.size() >= 2);
  RunningStats sx, sy;
  for (double x : xs) sx.add(x);
  for (double y : ys) sy.add(y);
  double cov = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    cov += (xs[i] - sx.mean()) * (ys[i] - sy.mean());
  }
  cov /= static_cast<double>(xs.size() - 1);
  const double denom = sx.stddev() * sy.stddev();
  return denom == 0.0 ? 0.0 : cov / denom;
}

}  // namespace repl
