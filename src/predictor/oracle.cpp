#include "predictor/oracle.hpp"

#include "util/check.hpp"

namespace repl {

bool ground_truth_within_lambda(const Trace& trace,
                                const PredictionQuery& query) {
  REPL_REQUIRE(query.lambda > 0.0);
  if (query.request_index < 0) {
    return first_gap_within_lambda(trace, query.server, query.lambda);
  }
  const auto i = static_cast<std::size_t>(query.request_index);
  REPL_REQUIRE(i < trace.size());
  REPL_REQUIRE_MSG(trace[i].server == query.server,
                   "prediction query server mismatch at request " << i);
  return next_gap_within_lambda(trace, i, query.lambda);
}

Prediction OraclePredictor::predict(const PredictionQuery& query) {
  return Prediction{ground_truth_within_lambda(*trace_, query)};
}

Prediction AdversarialPredictor::predict(const PredictionQuery& query) {
  return Prediction{!ground_truth_within_lambda(*trace_, query)};
}

}  // namespace repl
