// Shared helpers for the test suite.
#pragma once

#include <memory>
#include <vector>

#include "core/drwp.hpp"
#include "core/simulator.hpp"
#include "predictor/fixed.hpp"
#include "predictor/noisy.hpp"
#include "predictor/oracle.hpp"
#include "trace/generators.hpp"
#include "trace/trace.hpp"

namespace repl::testing {

inline SystemConfig make_config(int num_servers, double lambda,
                                int initial_server = 0) {
  SystemConfig config;
  config.num_servers = num_servers;
  config.transfer_cost = lambda;
  config.initial_server = initial_server;
  return config;
}

/// A quick random trace whose inter-request times straddle all three
/// regimes (<= alpha*lambda, (alpha*lambda, lambda], > lambda) for the
/// lambda values the suites use.
inline Trace random_trace(int num_servers, double rate, double horizon,
                          std::uint64_t seed) {
  ServerAssignment assignment;
  assignment.kind = ServerAssignment::Kind::kZipf;
  assignment.zipf_s = 1.0;
  return generate_poisson_trace(num_servers, rate, horizon, assignment,
                                seed);
}

/// Runs DRWP(alpha) with the given predictor and full event recording.
inline SimulationResult run_drwp(const SystemConfig& config,
                                 const Trace& trace, double alpha,
                                 Predictor& predictor) {
  DrwpPolicy policy(alpha);
  return Simulator(config).run(policy, trace, predictor);
}

}  // namespace repl::testing
