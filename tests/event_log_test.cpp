// Binary event-log tests: write → read round trip, header bookkeeping,
// corruption error paths (bad magic, bad version, truncation), the
// CSV twin conversions, and the streaming workload generator.
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "replay/structure.hpp"
#include "trace/event_log.hpp"
#include "trace/stream_gen.hpp"

namespace repl {
namespace {

class EventLogTest : public ::testing::Test {
 protected:
  /// A fresh path under the test's temp dir; removed on teardown.
  std::string temp_path(const std::string& name) {
    const auto path = dir_ / name;
    paths_.push_back(path);
    return path.string();
  }

  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("repl_event_log_test_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    std::filesystem::create_directories(dir_);
  }

  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  std::filesystem::path dir_;
  std::vector<std::filesystem::path> paths_;
};

std::vector<LogEvent> read_all(const std::string& path) {
  EventLogReader reader(path);
  std::vector<LogEvent> events;
  LogEvent event;
  while (reader.next(event)) events.push_back(event);
  return events;
}

TEST_F(EventLogTest, RoundTripPreservesEventsAndHeader) {
  const std::string path = temp_path("roundtrip.evlog");
  const std::vector<LogEvent> events = {
      {0.5, 3, 1}, {1.25, 0, 0}, {1.25, 7, 2}, {9.75e6, 3, 1}};
  {
    EventLogWriter writer(path, /*num_servers=*/3);
    for (const LogEvent& e : events) writer.write(e);
    EXPECT_EQ(writer.events_written(), events.size());
    writer.close();
  }

  EventLogReader reader(path);
  EXPECT_EQ(reader.header().version, EventLogHeader::kVersionRaw);
  EXPECT_EQ(reader.num_servers(), 3);
  EXPECT_EQ(reader.header().num_events, events.size());
  EXPECT_EQ(reader.header().num_objects, 8u);  // max id 7, inferred +1

  std::vector<LogEvent> back;
  LogEvent event;
  while (reader.next(event)) back.push_back(event);
  EXPECT_EQ(back, events);
  EXPECT_FALSE(reader.next(event));  // stays at EOF
}

TEST_F(EventLogTest, ReadBatchChunksTheStream) {
  const std::string path = temp_path("batch.evlog");
  {
    EventLogWriter writer(path, 2);
    for (int i = 0; i < 10; ++i) {
      writer.write(static_cast<double>(i) + 1.0,
                   static_cast<std::uint64_t>(i % 4),
                   static_cast<std::uint32_t>(i % 2));
    }
    writer.close();
  }
  EventLogReader reader(path);
  std::vector<LogEvent> batch;
  EXPECT_EQ(reader.read_batch(batch, 4), 4u);
  EXPECT_EQ(batch[0].time, 1.0);
  EXPECT_EQ(reader.read_batch(batch, 4), 4u);
  EXPECT_EQ(reader.read_batch(batch, 4), 2u);
  EXPECT_EQ(reader.read_batch(batch, 4), 0u);
  EXPECT_EQ(reader.events_read(), 10u);
}

TEST_F(EventLogTest, WriterRejectsBadInput) {
  const std::string path = temp_path("reject.evlog");
  EventLogWriter writer(path, 2, /*num_objects=*/5);
  writer.write(1.0, 0, 0);
  EXPECT_THROW(writer.write(0.5, 0, 0), std::invalid_argument);  // time order
  EXPECT_THROW(writer.write(2.0, 0, 2), std::invalid_argument);  // server
  EXPECT_THROW(writer.write(2.0, 5, 0), std::invalid_argument);  // object
  writer.write(1.0, 4, 1);  // equal times are fine (ties across objects)
  writer.close();
}

TEST_F(EventLogTest, BadMagicIsRejected) {
  const std::string path = temp_path("bad_magic.evlog");
  std::ofstream(path, std::ios::binary) << "definitely not an event log....";
  EXPECT_THROW(EventLogReader reader(path), std::runtime_error);
}

TEST_F(EventLogTest, BadVersionIsRejected) {
  const std::string path = temp_path("bad_version.evlog");
  {
    EventLogWriter writer(path, 2);
    writer.write(1.0, 0, 0);
    writer.close();
  }
  // Bump the version field (offset 8) to an unsupported value.
  std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
  f.seekp(8);
  const char bumped = 99;
  f.write(&bumped, 1);
  f.close();
  EXPECT_THROW(EventLogReader reader(path), std::runtime_error);
}

TEST_F(EventLogTest, TruncatedFileIsDetected) {
  const std::string path = temp_path("trunc.evlog");
  {
    EventLogWriter writer(path, 2);
    for (int i = 1; i <= 100; ++i) {
      writer.write(static_cast<double>(i), 0, 0);
    }
    writer.close();
  }
  // Chop mid-record: fewer events than the header promises AND a partial
  // trailing record.
  const auto full = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, full - EventLogHeader::kRecordSize - 7);

  EventLogReader reader(path);
  LogEvent event;
  EXPECT_THROW(
      {
        while (reader.next(event)) {
        }
      },
      std::runtime_error);
}

/// Simulates a crashed writer: the header's num_events (offset 24) is
/// still the kUnknownCount sentinel, so readers cannot bounds-check a
/// skip against the header.
void patch_unknown_count(const std::string& path) {
  std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
  ASSERT_TRUE(f.is_open());
  unsigned char unknown[8];
  std::memset(unknown, 0xFF, sizeof(unknown));
  f.seekp(24);
  f.write(reinterpret_cast<const char*>(unknown), sizeof(unknown));
}

TEST_F(EventLogTest, SkipPastEndOfStreamingRawLogFailsLoudly) {
  // seekg past EOF "succeeds", so without an explicit file-size check a
  // resume offset beyond a crashed v1 log would silently read as a clean
  // empty log. It must throw, naming requested and available counts.
  const std::string path = temp_path("stream_v1.evlog");
  {
    EventLogWriter writer(path, 2);
    for (int i = 1; i <= 50; ++i) {
      writer.write(static_cast<double>(i), 0, 0);
    }
    writer.close();
  }
  patch_unknown_count(path);
  // Drop the last 20 records too (the crash lost them).
  std::filesystem::resize_file(
      path, EventLogHeader::kSize + 30 * EventLogHeader::kRecordSize);

  EventLogReader reader(path);
  try {
    reader.skip_events(40);
    FAIL() << "over-skip must throw";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("cannot skip 40"), std::string::npos) << what;
    EXPECT_NE(what.find("only 30 available"), std::string::npos) << what;
  }
}

TEST_F(EventLogTest, SkipPastEndOfStreamingCompressedLogFailsLoudly) {
  const std::string path = temp_path("stream_v2.evlog");
  {
    EventLogWriter writer(path, 2, 0, EventLogFormat::kCompressed,
                          /*block_events=*/64);
    for (int i = 1; i <= 320; ++i) {
      writer.write(static_cast<double>(i), static_cast<std::uint64_t>(i % 7),
                   0);
    }
    writer.close();
  }
  patch_unknown_count(path);

  EventLogReader reader(path);
  // A skip within the data still works on a streaming log...
  reader.skip_events(100);
  LogEvent event;
  ASSERT_TRUE(reader.next(event));
  EXPECT_EQ(event.time, 101.0);
  // ...but past the end it must throw with requested/available counts.
  try {
    reader.skip_events(300);
    FAIL() << "over-skip must throw";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("cannot skip 300"), std::string::npos) << what;
    EXPECT_NE(what.find("only 219 available"), std::string::npos) << what;
  }
}

TEST_F(EventLogTest, SkipPastHeaderCountStaysAnArgumentError) {
  // On a finished log the header knows the count, so an over-skip is a
  // caller bug (std::invalid_argument), distinct from the runtime
  // truncation diagnosis above.
  const std::string path = temp_path("finished.evlog");
  {
    EventLogWriter writer(path, 2, 0, EventLogFormat::kCompressed);
    for (int i = 1; i <= 10; ++i) {
      writer.write(static_cast<double>(i), 0, 0);
    }
    writer.close();
  }
  EventLogReader reader(path);
  EXPECT_THROW(reader.skip_events(11), std::invalid_argument);
}

TEST_F(EventLogTest, TruncatedHeaderIsDetected) {
  const std::string path = temp_path("trunc_header.evlog");
  std::ofstream(path, std::ios::binary) << "REPL";  // 4 of 32 header bytes
  EXPECT_THROW(EventLogReader reader(path), std::runtime_error);
}

TEST_F(EventLogTest, CsvRoundTripMatchesBinary) {
  const std::string log_path = temp_path("orig.evlog");
  const std::string csv_path = temp_path("twin.csv");
  const std::string back_path = temp_path("back.evlog");

  StreamWorkloadConfig config;
  config.num_objects = 50;
  config.num_servers = 6;
  config.rate = 2.0;
  config.horizon = 500.0;
  const std::uint64_t generated = generate_event_log(config, 7, log_path);
  ASSERT_GT(generated, 100u);

  EXPECT_EQ(event_log_to_csv(log_path, csv_path), generated);
  EXPECT_EQ(event_log_from_csv(csv_path, back_path, config.num_servers),
            generated);

  // Doubles are written with round-trip precision, so the binary → CSV →
  // binary cycle is lossless and the event sequences match exactly.
  EXPECT_EQ(read_all(back_path), read_all(log_path));

  // Server-count inference (num_servers = 0) scans the CSV twice but
  // lands on the same log.
  const std::string inferred_path = temp_path("inferred.evlog");
  EXPECT_EQ(event_log_from_csv(csv_path, inferred_path, 0), generated);
  EXPECT_EQ(read_all(inferred_path), read_all(log_path));
}

TEST_F(EventLogTest, CsvRejectsMalformedRows) {
  const std::string csv_path = temp_path("bad.csv");
  const std::string log_path = temp_path("bad.evlog");
  std::ofstream(csv_path) << "time,object,server\n1.0,0\n";
  EXPECT_THROW(event_log_from_csv(csv_path, log_path, 2),
               std::invalid_argument);
  std::ofstream(csv_path, std::ios::trunc)
      << "time,object,server\n1.0,zero,0\n";
  EXPECT_THROW(event_log_from_csv(csv_path, log_path, 2),
               std::invalid_argument);
  // Blank lines before the header (or anywhere) are tolerated.
  const std::string ok_path = temp_path("ok.evlog");
  std::ofstream(csv_path, std::ios::trunc)
      << "\ntime,object,server\n1.0,0,0\n\n2.0,1,1\n";
  EXPECT_EQ(event_log_from_csv(csv_path, ok_path, 2), 2u);
  // An embedded header (concatenated CSVs) is data corruption, not a
  // skippable row.
  std::ofstream(csv_path, std::ios::trunc)
      << "time,object,server\n1.0,0,0\ntime,object,server\n2.0,1,1\n";
  EXPECT_THROW(event_log_from_csv(csv_path, log_path, 2),
               std::invalid_argument);
  // A failed conversion must not leave a valid-looking partial log
  // behind (the writer's destructor patches a self-consistent header).
  EXPECT_FALSE(std::filesystem::exists(log_path));
}

TEST_F(EventLogTest, GeneratorIsDeterministicAndOrdered) {
  StreamWorkloadConfig config;
  config.num_objects = 200;
  config.num_servers = 5;
  config.rate = 1.0;
  config.max_events = 2000;

  const std::string a = temp_path("gen_a.evlog");
  const std::string b = temp_path("gen_b.evlog");
  ASSERT_EQ(generate_event_log(config, 11, a), config.max_events);
  ASSERT_EQ(generate_event_log(config, 11, b), config.max_events);
  const std::vector<LogEvent> events = read_all(a);
  EXPECT_EQ(events, read_all(b));

  double prev = 0.0;
  for (const LogEvent& e : events) {
    EXPECT_GT(e.time, prev);  // global strict increase
    prev = e.time;
    EXPECT_LT(e.object, config.num_objects);
    EXPECT_LT(e.server, static_cast<std::uint32_t>(config.num_servers));
  }

  const std::vector<LogEvent> other = [&] {
    const std::string c = temp_path("gen_c.evlog");
    generate_event_log(config, 12, c);
    return read_all(c);
  }();
  EXPECT_NE(events, other);  // seed matters
}

std::vector<LogEvent> sweep_events(std::size_t n) {
  std::vector<LogEvent> events;
  for (std::size_t i = 0; i < n; ++i) {
    events.push_back(LogEvent{0.5 * static_cast<double>(i + 1),
                              (3 * i) % 11, static_cast<std::uint32_t>(i % 4)});
  }
  return events;
}

void write_log(const std::string& path, const std::vector<LogEvent>& events,
               EventLogFormat format, std::size_t block_events) {
  EventLogWriter writer(path, /*num_servers=*/4, /*num_objects=*/0, format,
                        block_events);
  for (const LogEvent& event : events) writer.write(event);
  writer.close();
}

TEST_F(EventLogTest, SkipEventsLandsOnEveryCutAcrossBlockBoundaries) {
  // Every possible resume cut of a 3-block compressed log (block_events
  // = 4, 12 events): cuts inside blocks, exactly on both block
  // boundaries, and at the full count. After the skip, the remainder
  // must be exactly the reference tail and the log must end cleanly.
  const std::vector<LogEvent> events = sweep_events(12);
  const std::string path = temp_path("sweep.evlog");
  write_log(path, events, EventLogFormat::kCompressed, 4);

  for (std::uint64_t cut = 0; cut <= events.size(); ++cut) {
    EventLogReader reader(path);
    reader.skip_events(cut);
    EXPECT_EQ(reader.events_read(), cut);
    std::vector<LogEvent> rest;
    LogEvent event;
    while (reader.next(event)) rest.push_back(event);
    ASSERT_EQ(rest.size(), events.size() - cut) << "cut " << cut;
    for (std::size_t i = 0; i < rest.size(); ++i) {
      EXPECT_EQ(rest[i], events[cut + i]) << "cut " << cut << " event " << i;
    }
  }

  // Two-step skips that cross a block boundary mid-way land identically.
  for (std::uint64_t first : {std::uint64_t{3}, std::uint64_t{4}}) {
    EventLogReader reader(path);
    reader.skip_events(first);
    reader.skip_events(6);
    LogEvent event;
    ASSERT_TRUE(reader.next(event));
    EXPECT_EQ(event, events[first + 6]);
  }
}

TEST_F(EventLogTest, SkipOverTruncatedFinalPayloadFails) {
  // A resume skip across a final block whose payload was cut short must
  // throw a positioned error, never seek past EOF and read a clean end
  // (which would resume at the wrong position). Exercised with both a
  // known and an unknown header count.
  const std::vector<LogEvent> events = sweep_events(12);
  const std::string path = temp_path("skiptrunc.evlog");
  write_log(path, events, EventLogFormat::kCompressed, 4);
  std::vector<unsigned char> bytes = read_bytes(path);
  bytes.resize(bytes.size() - 3);

  const std::string known = temp_path("skiptrunc_known.evlog");
  write_bytes(known, bytes);
  {
    EventLogReader reader(known);
    EXPECT_THROW(reader.skip_events(12), std::runtime_error);
  }

  patch_log_event_count(bytes, EventLogHeader::kUnknownCount);
  const std::string streaming = temp_path("skiptrunc_stream.evlog");
  write_bytes(streaming, bytes);
  {
    EventLogReader reader(streaming);
    try {
      reader.skip_events(12);
      FAIL() << "skip over a truncated payload went undetected";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("truncated block payload"),
                std::string::npos)
          << e.what();
    }
  }
}

TEST_F(EventLogTest, RejectsTrailingBlockPastHeaderCount) {
  // A duplicated final block past a consistent header count once slipped
  // through: the reader stopped at the count and ignored the surplus.
  const std::vector<LogEvent> events = sweep_events(10);
  const std::string path = temp_path("trailing.evlog");
  write_log(path, events, EventLogFormat::kCompressed, 4);
  std::vector<unsigned char> bytes = read_bytes(path);
  const LogImage image = walk_log_image(bytes);
  const SegmentSpan& last = image.segments.back();
  bytes.insert(bytes.end(),
               bytes.begin() + static_cast<std::ptrdiff_t>(last.offset),
               bytes.begin() + static_cast<std::ptrdiff_t>(last.end()));
  const std::string corrupt = temp_path("trailing_dup.evlog");
  write_bytes(corrupt, bytes);

  EventLogReader reader(corrupt);
  LogEvent event;
  try {
    while (reader.next(event)) {
    }
    FAIL() << "trailing block went undetected";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("trailing data"), std::string::npos)
        << e.what();
  }
}

TEST_F(EventLogTest, RejectsTrailingRecordPastHeaderCount) {
  const std::vector<LogEvent> events = sweep_events(5);
  const std::string path = temp_path("trailing_rec.evlog");
  write_log(path, events, EventLogFormat::kRaw, 4);
  std::vector<unsigned char> bytes = read_bytes(path);
  bytes.insert(bytes.end(),
               bytes.end() -
                   static_cast<std::ptrdiff_t>(EventLogHeader::kRecordSize),
               bytes.end());
  const std::string corrupt = temp_path("trailing_rec_dup.evlog");
  write_bytes(corrupt, bytes);

  EventLogReader reader(corrupt);
  LogEvent event;
  try {
    while (reader.next(event)) {
    }
    FAIL() << "trailing record went undetected";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("trailing data"), std::string::npos)
        << e.what();
  }
}

TEST_F(EventLogTest, RejectsStrayTailOnStreamingLog) {
  // Unknown-count log whose only content past the header is a partial
  // record: the first refill swallows it whole, so only the end-of-log
  // check can reject it (the shape the fuzzer escaped with).
  const std::string path = temp_path("stray.evlog");
  write_log(path, {}, EventLogFormat::kRaw, 4);
  std::vector<unsigned char> bytes = read_bytes(path);
  patch_log_event_count(bytes, EventLogHeader::kUnknownCount);
  bytes.insert(bytes.end(), 6, 0x5a);
  const std::string corrupt = temp_path("stray_tail.evlog");
  write_bytes(corrupt, bytes);

  EventLogReader reader(corrupt);
  LogEvent event;
  try {
    while (reader.next(event)) {
    }
    FAIL() << "stray tail went undetected";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("truncated record"),
              std::string::npos)
        << e.what();
  }
}

TEST_F(EventLogTest, ZeroEventPaddingFramesAreTolerated) {
  // Zero-event frames are legal padding: mid-stream and trailing ones
  // decode to nothing and must not trip the trailing-data check.
  const std::vector<LogEvent> events = sweep_events(8);
  const std::string path = temp_path("padding.evlog");
  write_log(path, events, EventLogFormat::kCompressed, 4);
  std::vector<unsigned char> bytes = read_bytes(path);
  const LogImage image = walk_log_image(bytes);
  const std::vector<unsigned char> pad = frame_block(0, {});
  // One padding frame between the blocks, one at the end.
  bytes.insert(bytes.end(), pad.begin(), pad.end());
  bytes.insert(bytes.begin() + static_cast<std::ptrdiff_t>(
                                   image.segments[1].offset),
               pad.begin(), pad.end());
  const std::string padded = temp_path("padded.evlog");
  write_bytes(padded, bytes);

  EXPECT_EQ(read_all(padded), events);
}

TEST_F(EventLogTest, GeneratorCoversAllArrivalProcesses) {
  for (const auto arrivals : {StreamWorkloadConfig::Arrivals::kPoisson,
                              StreamWorkloadConfig::Arrivals::kPareto,
                              StreamWorkloadConfig::Arrivals::kDiurnal}) {
    StreamWorkloadConfig config;
    config.num_objects = 20;
    config.num_servers = 3;
    config.arrivals = arrivals;
    config.rate = 0.5;
    config.horizon = 2000.0;
    const std::string path = temp_path(
        "arrivals_" +
        std::to_string(static_cast<int>(arrivals)) + ".evlog");
    const std::uint64_t n = generate_event_log(config, 3, path);
    EXPECT_GT(n, 0u);
    const std::vector<LogEvent> events = read_all(path);
    EXPECT_EQ(events.size(), n);
    EXPECT_LE(events.back().time, config.horizon);
  }
}

}  // namespace
}  // namespace repl
