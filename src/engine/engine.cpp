#include "engine/engine.hpp"

#include <algorithm>
#include <chrono>
#include <exception>
#include <limits>
#include <optional>
#include <unordered_map>
#include <utility>

#include "offline/opt_lower_bound.hpp"
#include "run/parallel_runner.hpp"
#include "run/thread_pool.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace repl {

namespace {

/// Shard assignment: a SplitMix64 mix of the id, so dense and strided id
/// spaces both spread evenly. Pure function of the id — shard layout
/// never affects results, only load balance.
std::size_t shard_index(std::uint64_t object_id, std::size_t num_shards) {
  return static_cast<std::size_t>(SplitMix64(object_id).next() %
                                  static_cast<std::uint64_t>(num_shards));
}

struct ObjectState {
  ObjectState(const SystemConfig& config, const SimulationOptions& sim,
              PolicyPtr pol, PredictorPtr pred, bool with_lower_bound)
      : policy(std::move(pol)),
        predictor(std::move(pred)),
        simulation(config, sim, *policy, *predictor) {
    if (with_lower_bound) lower_bound.emplace(config);
  }

  PolicyPtr policy;
  PredictorPtr predictor;
  OnlineSimulation simulation;
  std::optional<StreamingLowerBound> lower_bound;
  std::size_t events = 0;
};

/// One finalized object's contribution, carried to the global reduction.
struct ObjectFinal {
  std::uint64_t id = 0;
  std::size_t events = 0;
  std::size_t num_local = 0;
  std::size_t num_transfers = 0;
  double online_cost = 0.0;
  double lower_bound = 0.0;
};

}  // namespace

struct StreamingEngine::Shard {
  std::unordered_map<std::uint64_t, std::unique_ptr<ObjectState>> objects;
  /// Events routed to this shard for the batch in flight, in stream order.
  std::vector<LogEvent> inbox;
  /// Set by the shard task on failure; the lowest shard index wins.
  std::exception_ptr error;
  /// Filled by finish(), sorted by object id.
  std::vector<ObjectFinal> finals;
  EngineShardMetrics metrics;
};

StreamingEngine::StreamingEngine(SystemConfig config, EngineOptions options,
                                 EnginePolicyFactory make_policy,
                                 EnginePredictorFactory make_predictor)
    : config_(std::move(config)),
      options_(options),
      make_policy_(std::move(make_policy)),
      make_predictor_(std::move(make_predictor)) {
  config_.validate();
  REPL_REQUIRE(options_.num_shards >= 1);
  REPL_REQUIRE(options_.num_threads >= 0);
  REPL_REQUIRE(make_policy_ != nullptr);
  REPL_REQUIRE(make_predictor_ != nullptr);
  if (options_.compute_lower_bound) {
    // Fail here, not inside the first shard task (which would poison
    // the engine for a statically-checkable precondition).
    for (double r : config_.storage_rates) {
      REPL_REQUIRE_MSG(r == 1.0,
                       "compute_lower_bound requires uniform unit storage "
                       "rates (OPTL is derived for them)");
    }
  }
  shards_.reserve(options_.num_shards);
  for (std::size_t i = 0; i < options_.num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

StreamingEngine::~StreamingEngine() = default;

StreamingEngine::Shard& StreamingEngine::shard_for(std::uint64_t object_id) {
  return *shards_[shard_index(object_id, options_.num_shards)];
}

void StreamingEngine::run_shard_tasks(
    const std::vector<std::size_t>& shard_ids,
    const std::function<void(Shard&)>& work) {
  const auto guarded = [&](Shard& shard) {
    try {
      work(shard);
    } catch (...) {
      shard.error = std::current_exception();
    }
  };

  if (options_.num_threads == 1 || shard_ids.size() <= 1) {
    for (std::size_t id : shard_ids) guarded(*shards_[id]);
  } else {
    if (!pool_) {
      pool_ = std::make_unique<ThreadPool>(
          options_.num_threads == 0
              ? 0
              : static_cast<std::size_t>(options_.num_threads));
      stats_.threads_used = static_cast<int>(pool_->num_threads());
    }
    const std::uint64_t steals_before = pool_->steal_count();
    for (std::size_t id : shard_ids) {
      Shard* shard = shards_[id].get();
      pool_->submit([&guarded, shard] { guarded(*shard); });
    }
    pool_->wait_idle();
    stats_.steals += pool_->steal_count() - steals_before;
  }

  // Deterministic error propagation: the lowest shard index wins. A
  // shard that failed mid-inbox has partially advanced object state, so
  // the engine as a whole is poisoned — later calls fail fast instead of
  // silently dropping the stuck inbox.
  for (const auto& shard : shards_) {
    if (shard->error) {
      failed_ = true;
      std::rethrow_exception(shard->error);
    }
  }
}

void StreamingEngine::ingest(const LogEvent* events, std::size_t count) {
  REPL_CHECK_MSG(!finished_, "ingest after finish()");
  REPL_CHECK_MSG(!failed_, "engine unusable after a prior failure");
  if (count == 0) return;
  const auto started = std::chrono::steady_clock::now();

  // Validate the whole batch before touching any engine state, so a
  // rejected batch leaves the engine clean and the caller may retry
  // with corrected input. Everything checkable without per-object state
  // is checked here; only per-object time strictness remains for
  // OnlineSimulation::step (a violation there poisons the engine).
  double prev = any_event_ ? last_batch_time_
                           : -std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < count; ++i) {
    REPL_REQUIRE_MSG(events[i].time > 0.0,
                     "event times must be strictly positive: "
                         << events[i].time);
    REPL_REQUIRE_MSG(events[i].time >= prev,
                     "event stream out of order: " << events[i].time
                                                   << " after " << prev);
    REPL_REQUIRE_MSG(
        events[i].server < static_cast<std::uint32_t>(config_.num_servers),
        "event server " << events[i].server << " out of range [0, "
                        << config_.num_servers << ")");
    prev = events[i].time;
  }

  // Route to shard inboxes in stream order.
  std::vector<std::size_t> active;
  for (std::size_t i = 0; i < count; ++i) {
    const LogEvent& event = events[i];
    Shard& shard = shard_for(event.object);
    if (shard.inbox.empty()) {
      active.push_back(shard_index(event.object, options_.num_shards));
    }
    shard.inbox.push_back(event);
  }
  last_batch_time_ = prev;
  any_event_ = true;

  SimulationOptions sim_options;
  sim_options.horizon = options_.horizon;
  sim_options.record_events = false;

  run_shard_tasks(active, [&](Shard& shard) {
    for (const LogEvent& event : shard.inbox) {
      std::unique_ptr<ObjectState>& slot = shard.objects[event.object];
      if (!slot) {
        EngineObjectContext context;
        context.object_id = event.object;
        context.seed = ParallelRunner::object_seed(
            options_.base_seed, static_cast<std::size_t>(event.object));
        slot = std::make_unique<ObjectState>(
            config_, sim_options, make_policy_(context),
            make_predictor_(context), options_.compute_lower_bound);
      }
      slot->simulation.step(static_cast<int>(event.server), event.time);
      if (slot->lower_bound) {
        slot->lower_bound->step(static_cast<int>(event.server), event.time);
      }
      ++slot->events;
    }
    shard.inbox.clear();
  });

  ++stats_.batches;
  stats_.events_ingested += count;
  stats_.ingest_seconds +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    started)
          .count();
}

EngineMetrics StreamingEngine::finish() {
  REPL_CHECK_MSG(!finished_, "finish() called twice");
  REPL_CHECK_MSG(!failed_, "engine unusable after a prior failure");
  finished_ = true;
  const auto started = std::chrono::steady_clock::now();

  std::vector<std::size_t> all_shards(shards_.size());
  for (std::size_t i = 0; i < shards_.size(); ++i) all_shards[i] = i;

  run_shard_tasks(all_shards, [](Shard& shard) {
    shard.finals.reserve(shard.objects.size());
    for (auto& [id, state] : shard.objects) {
      const SimulationResult result = state->simulation.finish();
      ObjectFinal final;
      final.id = id;
      final.events = state->events;
      final.num_local = result.num_local;
      final.num_transfers = result.num_transfers;
      final.online_cost = result.total_cost();
      final.lower_bound =
          state->lower_bound ? state->lower_bound->value() : 0.0;
      shard.finals.push_back(final);
      state.reset();  // release simulation state as we go
    }
    shard.objects.clear();
    std::sort(shard.finals.begin(), shard.finals.end(),
              [](const ObjectFinal& a, const ObjectFinal& b) {
                return a.id < b.id;
              });
    // Shard-local reduction in ascending object id.
    for (const ObjectFinal& final : shard.finals) {
      ++shard.metrics.objects;
      shard.metrics.events += final.events;
      shard.metrics.num_local += final.num_local;
      shard.metrics.num_transfers += final.num_transfers;
      shard.metrics.online_cost += final.online_cost;
      shard.metrics.lower_bound += final.lower_bound;
    }
  });

  // Global reduction: id-sorted across every shard, on the calling
  // thread — the exact order of a serial per-object sweep, which is what
  // makes the totals bit-identical for any shard/thread configuration.
  std::vector<ObjectFinal> all;
  std::size_t total_objects = 0;
  for (const auto& shard : shards_) total_objects += shard->finals.size();
  all.reserve(total_objects);
  for (auto& shard : shards_) {
    all.insert(all.end(), shard->finals.begin(), shard->finals.end());
    shard->finals.clear();
    shard->finals.shrink_to_fit();
  }
  std::sort(all.begin(), all.end(),
            [](const ObjectFinal& a, const ObjectFinal& b) {
              return a.id < b.id;
            });

  EngineMetrics metrics;
  for (const ObjectFinal& final : all) {
    ++metrics.objects;
    metrics.events += final.events;
    metrics.num_local += final.num_local;
    metrics.num_transfers += final.num_transfers;
    metrics.online_cost += final.online_cost;
    metrics.lower_bound += final.lower_bound;
  }
  metrics.shards.reserve(shards_.size());
  for (const auto& shard : shards_) metrics.shards.push_back(shard->metrics);

  stats_.finish_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    started)
          .count();
  return metrics;
}

EngineMetrics StreamingEngine::serve(EventLogReader& reader,
                                     std::size_t batch_events) {
  REPL_REQUIRE(batch_events >= 1);
  REPL_REQUIRE_MSG(reader.num_servers() == config_.num_servers,
                   "log has " << reader.num_servers()
                              << " servers, config expects "
                              << config_.num_servers);
  std::vector<LogEvent> batch;
  while (reader.read_batch(batch, batch_events) > 0) ingest(batch);
  return finish();
}

std::size_t StreamingEngine::object_count() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) total += shard->objects.size();
  return total;
}

EngineMetrics serve_event_log(const std::string& log_path,
                              const SystemConfig& config,
                              const EngineOptions& options,
                              const EnginePolicyFactory& make_policy,
                              const EnginePredictorFactory& make_predictor,
                              EngineStats* stats) {
  EventLogReader reader(log_path);
  StreamingEngine engine(config, options, make_policy, make_predictor);
  EngineMetrics metrics = engine.serve(reader);
  if (stats != nullptr) *stats = engine.stats();
  return metrics;
}

}  // namespace repl
