#include "util/json.hpp"

#include <cmath>
#include <cstdio>

#include "util/check.hpp"
#include "util/csv.hpp"

namespace repl {

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::before_value() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!needs_comma_.empty()) {
    if (needs_comma_.back()) out_ << ',';
    needs_comma_.back() = true;
  }
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  out_ << '{';
  needs_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  REPL_CHECK(!needs_comma_.empty() && !after_key_);
  needs_comma_.pop_back();
  out_ << '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  out_ << '[';
  needs_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  REPL_CHECK(!needs_comma_.empty() && !after_key_);
  needs_comma_.pop_back();
  out_ << ']';
  return *this;
}

JsonWriter& JsonWriter::key(const std::string& name) {
  REPL_CHECK_MSG(!needs_comma_.empty() && !after_key_,
                 "key() outside an object");
  if (needs_comma_.back()) out_ << ',';
  needs_comma_.back() = true;
  out_ << '"' << json_escape(name) << "\":";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& v) {
  before_value();
  out_ << '"' << json_escape(v) << '"';
  return *this;
}

JsonWriter& JsonWriter::value(const char* v) {
  return value(std::string(v));
}

JsonWriter& JsonWriter::value(double v) {
  before_value();
  // JSON has no Infinity/NaN literals; null is the conventional stand-in.
  if (std::isfinite(v)) {
    out_ << format_double(v);
  } else {
    out_ << "null";
  }
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  before_value();
  out_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  before_value();
  out_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  before_value();
  out_ << (v ? "true" : "false");
  return *this;
}

std::string JsonWriter::str() const {
  REPL_CHECK_MSG(needs_comma_.empty(), "unclosed JSON scope");
  return out_.str();
}

}  // namespace repl
