// Deterministic object-space partitioning for distributed serving.
//
// A cluster splits the object id space across N worker processes the way
// OMNeT++'s parsim layer splits a simulation into partitions: every
// object belongs to exactly one stable partition id, computed as a pure
// function of (object_id, num_partitions) — never of arrival order,
// worker liveness, or load. Stability is what makes the whole subsystem
// work: the coordinator can re-derive a dead worker's slice of the event
// stream from the source log alone, and a per-partition checkpoint can
// name the slice it froze.
//
// The mix is salted differently from the engine's internal shard mix
// (engine.cpp's SplitMix64(object_id) % num_shards), so partition and
// shard boundaries decorrelate: a partition's objects still spread
// evenly over its worker's shards at any geometry.
//
// kPartitionFunctionVersion names this exact mapping. It is recorded in
// every per-partition manifest (checkpoint/partition_manifest.hpp) and
// exchanged in the cluster control handshake; any future change to the
// mapping must bump it, so a snapshot cut under one mapping can never be
// silently resumed under another (the events it claims to have ingested
// would belong to a different slice).
#pragma once

#include <cstdint>

namespace repl {

/// Version of the object → partition mapping below. Bump on ANY change
/// to partition_of's output for any (id, num_partitions) pair.
inline constexpr std::uint32_t kPartitionFunctionVersion = 1;

/// Salt decorrelating the partition mix from the engine's shard mix.
inline constexpr std::uint64_t kPartitionSalt = 0x70617274736c7431ULL;

/// Stable partition of `object_id` among `num_partitions` workers.
/// Pure, version-pinned (kPartitionFunctionVersion); requires
/// num_partitions >= 1. With one partition every object maps to 0, so a
/// single-worker cluster degenerates to exactly the single-process
/// stream.
std::uint32_t partition_of(std::uint64_t object_id,
                           std::uint32_t num_partitions);

/// Fails loudly (std::invalid_argument) when `version` is not the
/// mapping this build implements — the wrong-slice defense used by
/// manifest validation and the control-plane handshake.
void require_partition_function_version(std::uint32_t version);

}  // namespace repl
