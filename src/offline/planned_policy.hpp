// Replays an OfflinePlan as a ReplicationPolicy.
//
// This turns the DP's optimal strategy into a runnable policy, so the
// *simulator's* cost accounting can be cross-validated against the DP's:
// simulating a PlannedPolicy over its trace must cost exactly plan.cost.
// It also provides the "offline optimum" row in comparative experiments
// (its ratio is 1 by construction).
//
// The policy is bound to the specific trace the plan was computed for;
// requests must be fed in exactly that order (checked).
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "core/policy.hpp"
#include "offline/opt_dp.hpp"
#include "trace/trace.hpp"

namespace repl {

class PlannedPolicy final : public ReplicationPolicy {
 public:
  /// `plan` must come from OptimalDpSolver::solve_with_plan on `trace`
  /// (or be any feasible plan for it). The trace is copied.
  PlannedPolicy(const Trace& trace, OfflinePlan plan);

  void reset(const SystemConfig& config, const Prediction& pred0,
             EventSink& sink) override;
  void advance_to(double time, EventSink&) override;
  ServeAction on_request(int server, double time, const Prediction& pred,
                         EventSink& sink) override;
  double next_transition_time() const override {
    return std::numeric_limits<double>::infinity();
  }
  bool holds(int server) const override;
  int copy_count() const override;
  std::string name() const override { return "offline-plan"; }
  std::unique_ptr<ReplicationPolicy> clone() const override;

 private:
  /// Emits creates/drops (plus transfers for servers that are neither
  /// the requester nor already holding) moving the holder set to
  /// `target`. `requester` < 0 means no request is being served (the
  /// time-0 reconciliation).
  void reconcile(std::uint32_t target, int requester, double time,
                 EventSink& sink, int* extra_transfers);

  int bit_of(int server) const;
  int server_of_bit(int bit) const {
    return plan_.active_servers[static_cast<std::size_t>(bit)];
  }

  Trace trace_;
  OfflinePlan plan_;
  SystemConfig config_;
  std::vector<int> server_to_bit_;
  std::uint32_t holders_ = 0;  // bitmask over plan_.active_servers
  std::size_t next_request_ = 0;
  double now_ = 0.0;
};

}  // namespace repl
