// Experiment E8a — ablation of the misprediction analysis (Section 8):
// how the cost penalty decomposes over the M1/M2/M3 regimes, and how
// tight the paper's bound λ|M2| + (2-α)λ|M3| is in practice.
//
// For each (alpha, accuracy) cell we measure: the misprediction counts,
// the realized cost increase over the oracle run (allocation totals on
// the same trace), the bound, and their quotient (tightness).
//
// Expected shapes: M1 mispredictions are free; the realized increase
// never exceeds the bound; the bound loosens (quotient drops) as alpha
// grows because (2-α)λ over-charges benign M3 flips.
#include <iostream>

#include "analysis/allocation.hpp"
#include "analysis/misprediction.hpp"
#include "bench_util.hpp"
#include "core/drwp.hpp"
#include "core/simulator.hpp"
#include "offline/opt_lower_bound.hpp"
#include "predictor/noisy.hpp"
#include "predictor/oracle.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace repl;
  CliParser cli("bench_ablation_misprediction",
                "Section 8 misprediction penalty: measured vs bound");
  cli.add_flag("seed", "5", "trace seed");
  cli.add_flag("lambda", "500", "transfer cost");
  cli.add_flag("scale", "0.5", "trace scale");
  if (!cli.parse(argc, argv)) return 0;

  const Trace trace =
      bench::evaluation_trace(cli.get_uint64("seed"), cli.get_double("scale"));
  SystemConfig config;
  config.num_servers = trace.num_servers();
  config.transfer_cost = cli.get_double("lambda");
  std::cout << "trace: " << trace.size() << " requests, lambda = "
            << config.transfer_cost << "\n\n";

  bench::ShapeChecks checks;
  Table table({"alpha", "accuracy", "M1", "M2", "M3", "measured increase",
               "bound", "tightness"});
  for (double alpha : {0.1, 0.3, 0.6, 1.0}) {
    OraclePredictor oracle(trace);
    DrwpPolicy baseline(alpha);
    const SimulationResult perfect =
        Simulator(config).run(baseline, trace, oracle);
    const double perfect_alloc =
        allocate_costs(perfect, trace).total_allocated;

    for (double accuracy : {0.0, 0.25, 0.5, 0.75}) {
      AccuracyPredictor noisy(trace, accuracy, 321);
      DrwpPolicy policy(alpha);
      const SimulationResult degraded =
          Simulator(config).run(policy, trace, noisy);
      const MispredictionReport report =
          analyze_mispredictions(degraded, trace, alpha);
      const double increase =
          allocate_costs(degraded, trace).total_allocated - perfect_alloc;
      const double tightness =
          report.penalty_bound > 0.0
              ? std::max(increase, 0.0) / report.penalty_bound
              : 0.0;
      table.add_row({Table::cell(alpha, 2), bench::percent_label(accuracy),
                     Table::cell(report.m1), Table::cell(report.m2),
                     Table::cell(report.m3), Table::cell(increase, 1),
                     Table::cell(report.penalty_bound, 1),
                     Table::cell(tightness, 4)});
      checks.expect(increase <= report.penalty_bound + 1e-6,
                    "penalty bound covers measured increase at alpha=" +
                        Table::cell(alpha, 2) + " accuracy=" +
                        bench::percent_label(accuracy));
    }
  }
  std::cout << table.str() << "\n";
  std::cout << "tightness = measured increase / bound; low values mean "
               "the Section-8 bound is conservative on this workload.\n";
  return checks.finish();
}
