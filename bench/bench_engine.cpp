// Streaming-engine throughput sweep: synthesizes interleaved
// multi-object event logs to disk (objects swept geometrically up to
// --objects, a fixed --events per row), then serves each log through the
// sharded StreamingEngine at every thread count in --threads, reporting
// events/sec. Per-object traces are never materialized — the stream goes
// binary log → batcher → shards.
//
//   ./build/bench/bench_engine                  # 10^4..10^6 objects, 10^7 events
//   ./build/bench/bench_engine --smoke          # CI-sized run + parity check
//
// At smoke scale (or with --verify) the engine aggregates are checked
// bit-for-bit against a serial per-object Simulator sweep over the same
// log. A machine-readable BENCH_engine.json accompanies the table.
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/drwp.hpp"
#include "core/simulator.hpp"
#include "engine/engine.hpp"
#include "offline/opt_lower_bound.hpp"
#include "predictor/last_gap.hpp"
#include "trace/event_log.hpp"
#include "trace/stream_gen.hpp"
#include "trace/trace.hpp"
#include "util/cli.hpp"
#include "util/json.hpp"
#include "util/table.hpp"

#ifndef REPL_GIT_DESCRIBE
#define REPL_GIT_DESCRIBE "unknown"
#endif

namespace {

using namespace repl;

struct RowResult {
  std::uint64_t objects = 0;
  std::uint64_t events = 0;
  int threads_requested = 0;
  int threads_used = 1;
  double events_per_sec = 0.0;
  double ingest_seconds = 0.0;
  double finish_seconds = 0.0;
  std::uint64_t steals = 0;
  double online_cost = 0.0;
  double ratio = 1.0;
  bool verified = false;
  bool identical = true;
};

/// Mid-stream snapshot cost at one object count: write the checkpoint at
/// half the log, restore it, finish the serve, and require the resumed
/// aggregates to be bit-identical to an uninterrupted run.
struct CheckpointResult {
  std::uint64_t objects = 0;
  std::uint64_t at_events = 0;
  std::uint64_t bytes = 0;
  double write_seconds = 0.0;
  double restore_seconds = 0.0;
  bool identical = true;
};

EnginePolicyFactory policy_factory(double alpha) {
  return [alpha](const EngineObjectContext&) -> PolicyPtr {
    return std::make_unique<DrwpPolicy>(alpha);
  };
}

EnginePredictorFactory predictor_factory(int num_servers) {
  return [num_servers](const EngineObjectContext&) -> PredictorPtr {
    return std::make_unique<LastGapPredictor>(num_servers);
  };
}

/// Serial reference for the parity check: per-object Simulator + OPTL
/// sweep in object-id order (materializes the traces, so only run at
/// verification scale).
bool matches_serial(const std::string& log_path, const SystemConfig& config,
                    double alpha, const EngineMetrics& metrics) {
  std::map<std::uint64_t, std::vector<Request>> per_object;
  {
    EventLogReader reader(log_path);
    LogEvent event;
    while (reader.next(event)) {
      per_object[event.object].push_back(
          Request{event.time, static_cast<int>(event.server)});
    }
  }
  SimulationOptions options;
  options.record_events = false;
  const Simulator simulator(config, options);
  double online_cost = 0.0;
  double lower_bound = 0.0;
  std::size_t transfers = 0;
  for (auto& [id, requests] : per_object) {
    Trace trace(config.num_servers, std::move(requests));
    DrwpPolicy policy(alpha);
    LastGapPredictor predictor(config.num_servers);
    const SimulationResult result = simulator.run(policy, trace, predictor);
    online_cost += result.total_cost();
    transfers += result.num_transfers;
    lower_bound += opt_lower_bound(config, trace);
  }
  return online_cost == metrics.online_cost &&
         lower_bound == metrics.lower_bound &&
         transfers == metrics.num_transfers &&
         per_object.size() == metrics.objects;
}

/// Measures checkpoint write + restore throughput on `log_path`, and
/// verifies the resumed serve reproduces `reference` bit for bit.
CheckpointResult measure_checkpoint(const std::string& log_path,
                                    const SystemConfig& config,
                                    const EngineOptions& options,
                                    double alpha,
                                    const EngineMetrics& reference) {
  const std::string ckpt_path = log_path + ".ckpt";
  CheckpointResult result;
  {
    EventLogReader reader(log_path);
    StreamingEngine engine(config, options, policy_factory(alpha),
                           predictor_factory(config.num_servers));
    // Drain half the log, snapshot, abandon (the simulated crash).
    const std::uint64_t half =
        reader.header().num_events == EventLogHeader::kUnknownCount
            ? 0
            : reader.header().num_events / 2;
    std::vector<LogEvent> batch;
    while (engine.stats().events_ingested < half &&
           reader.read_batch(batch, std::size_t{1} << 16) > 0) {
      engine.ingest(batch);
    }
    result.at_events = engine.stats().events_ingested;
    const auto write_start = std::chrono::steady_clock::now();
    engine.checkpoint(ckpt_path);
    result.write_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      write_start)
            .count();
  }
  result.bytes = std::filesystem::file_size(ckpt_path);

  const auto restore_start = std::chrono::steady_clock::now();
  auto resumed = StreamingEngine::restore(ckpt_path, config, options,
                                          policy_factory(alpha),
                                          predictor_factory(
                                              config.num_servers));
  result.restore_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    restore_start)
          .count();
  result.objects = resumed->object_count();

  EventLogReader reader(log_path);
  const EngineMetrics metrics = resumed->serve(reader);
  result.identical = metrics.online_cost == reference.online_cost &&
                     metrics.lower_bound == reference.lower_bound &&
                     metrics.num_transfers == reference.num_transfers &&
                     metrics.num_local == reference.num_local &&
                     metrics.events == reference.events &&
                     metrics.objects == reference.objects;
  std::error_code ec;
  std::filesystem::remove(ckpt_path, ec);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("bench_engine",
                "streaming engine throughput sweep over binary event logs");
  cli.add_flag("min-objects", "10000", "smallest object count in the sweep");
  cli.add_flag("objects", "1000000", "largest object count in the sweep");
  cli.add_flag("events", "10000000", "events per generated log");
  cli.add_flag("servers", "10", "servers in the system");
  cli.add_flag("shards", "256", "object-table shards");
  cli.add_flag("batch", "65536", "events per ingest batch");
  cli.add_flag("threads", "1,2,4,8", "comma-separated thread counts "
               "(0 = all hardware threads)");
  cli.add_flag("lambda", "10", "transfer cost λ");
  cli.add_flag("alpha", "0.3", "DRWP α");
  cli.add_flag("seed", "42", "workload seed");
  cli.add_flag("json", "BENCH_engine.json", "machine-readable output path");
  cli.add_bool_flag("verify", "also run the serial per-object Simulator "
                    "sweep and require bit-identical aggregates");
  cli.add_bool_flag("checkpoint", "also measure checkpoint write/restore "
                    "throughput at half of each log (resume parity checked)");
  cli.add_bool_flag("keep-logs", "keep the generated event logs on disk");
  cli.add_bool_flag("smoke", "CI-sized run: 2·10^3 objects, 2·10^5 events, "
                    "threads 1 and 4, verification on");
  if (!cli.parse(argc, argv)) return 0;

  // Bounds-checked count flags (no narrowing casts from get_int).
  std::size_t min_objects = cli.get_size_t("min-objects", 1, 100000000);
  std::size_t max_objects = cli.get_size_t("objects", 1, 100000000);
  std::uint64_t events = cli.get_size_t("events", 1);
  const std::size_t shards = cli.get_size_t("shards", 1, 1 << 20);
  const std::size_t batch = cli.get_size_t("batch", 1);
  const int servers = static_cast<int>(cli.get_size_t("servers", 1, 4096));
  const double lambda = cli.get_double("lambda");
  const double alpha = cli.get_double("alpha");
  const std::uint64_t seed = cli.get_uint64("seed");
  const bool smoke = cli.get_bool("smoke");
  bool verify = cli.get_bool("verify") || smoke;
  const bool checkpointing = cli.get_bool("checkpoint") || smoke;
  std::vector<int> thread_counts;
  for (const double t : cli.get_double_list("threads")) {
    thread_counts.push_back(static_cast<int>(t));
  }
  if (smoke) {
    min_objects = 2000;
    max_objects = 2000;
    events = 200000;
    thread_counts = {1, 4};
  }
  if (min_objects > max_objects || thread_counts.empty()) {
    std::cerr << "error: need --min-objects <= --objects and a non-empty "
                 "--threads list\n";
    return EXIT_FAILURE;
  }

  SystemConfig config;
  config.num_servers = servers;
  config.transfer_cost = lambda;

  Table table({"objects", "events", "threads", "used", "events/s",
               "ingest_s", "finish_s", "steals", "cost", "ratio",
               "identical"});
  std::vector<RowResult> rows;
  std::vector<CheckpointResult> checkpoint_rows;
  bool all_identical = true;

  for (std::size_t objects = min_objects;;) {
    // One log per object count; every thread count serves the same file.
    StreamWorkloadConfig workload;
    workload.num_objects = objects;
    workload.num_servers = servers;
    workload.rate = static_cast<double>(objects) / 64.0;
    workload.max_events = events;
    const std::string log_path =
        (std::filesystem::temp_directory_path() /
         ("bench_engine_" + std::to_string(objects) + ".evlog"))
            .string();
    std::cerr << "generating " << events << " events over " << objects
              << " objects -> " << log_path << "\n";
    generate_event_log(workload, seed, log_path);

    EngineMetrics last_metrics;
    EngineOptions last_options;
    for (const int threads : thread_counts) {
      EngineOptions options;
      options.num_shards = shards;
      options.num_threads = threads;
      options.base_seed = seed;

      EventLogReader reader(log_path);
      StreamingEngine engine(config, options, policy_factory(alpha),
                             predictor_factory(servers));
      const EngineMetrics metrics = engine.serve(reader, batch);
      const EngineStats& stats = engine.stats();
      last_metrics = metrics;
      last_options = options;

      RowResult row;
      row.objects = objects;
      row.events = stats.events_ingested;
      row.threads_requested = threads;
      row.threads_used = stats.threads_used;
      row.ingest_seconds = stats.ingest_seconds;
      row.finish_seconds = stats.finish_seconds;
      const double wall = stats.ingest_seconds + stats.finish_seconds;
      row.events_per_sec =
          wall > 0.0 ? static_cast<double>(row.events) / wall : 0.0;
      row.steals = stats.steals;
      row.online_cost = metrics.online_cost;
      row.ratio = metrics.ratio();
      if (verify) {
        row.verified = true;
        row.identical = matches_serial(log_path, config, alpha, metrics);
        all_identical = all_identical && row.identical;
      }
      rows.push_back(row);

      table.add_row({Table::cell(row.objects), Table::cell(row.events),
                     Table::cell(row.threads_requested),
                     Table::cell(row.threads_used),
                     Table::cell(row.events_per_sec, 0),
                     Table::cell(row.ingest_seconds, 3),
                     Table::cell(row.finish_seconds, 3),
                     Table::cell(row.steals),
                     Table::cell(row.online_cost, 1),
                     Table::cell(row.ratio, 4),
                     row.verified ? (row.identical ? "yes" : "NO") : "-"});
    }

    if (checkpointing) {
      const CheckpointResult ck = measure_checkpoint(
          log_path, config, last_options, alpha, last_metrics);
      all_identical = all_identical && ck.identical;
      checkpoint_rows.push_back(ck);
    }

    if (!cli.get_bool("keep-logs")) {
      std::error_code ec;
      std::filesystem::remove(log_path, ec);
    }
    if (objects >= max_objects) break;
    objects = std::min(objects * 10, max_objects);
  }

  std::cout << table.str() << "\n";

  if (!checkpoint_rows.empty()) {
    Table ck_table({"objects", "ckpt@events", "bytes", "write_s",
                    "write_MB/s", "restore_s", "restore_MB/s", "identical"});
    for (const CheckpointResult& ck : checkpoint_rows) {
      const double mb = static_cast<double>(ck.bytes) / (1024.0 * 1024.0);
      ck_table.add_row(
          {Table::cell(ck.objects), Table::cell(ck.at_events),
           Table::cell(ck.bytes),
           Table::cell(ck.write_seconds, 3),
           Table::cell(ck.write_seconds > 0.0 ? mb / ck.write_seconds : 0.0,
                       1),
           Table::cell(ck.restore_seconds, 3),
           Table::cell(
               ck.restore_seconds > 0.0 ? mb / ck.restore_seconds : 0.0, 1),
           ck.identical ? "yes" : "NO"});
    }
    std::cout << ck_table.str() << "\n";
  }

  JsonWriter json;
  json.begin_object();
  json.key("bench").value("bench_engine");
  json.key("git_describe").value(REPL_GIT_DESCRIBE);
  json.key("smoke").value(smoke);
  json.key("servers").value(servers);
  json.key("shards").value(static_cast<std::uint64_t>(shards));
  json.key("lambda").value(lambda);
  json.key("alpha").value(alpha);
  json.key("rows").begin_array();
  for (const RowResult& row : rows) {
    json.begin_object();
    json.key("objects").value(row.objects);
    json.key("events").value(row.events);
    json.key("threads").value(row.threads_requested);
    json.key("threads_used").value(row.threads_used);
    json.key("events_per_second").value(row.events_per_sec);
    json.key("ingest_seconds").value(row.ingest_seconds);
    json.key("finish_seconds").value(row.finish_seconds);
    json.key("steals").value(row.steals);
    json.key("online_cost").value(row.online_cost);
    json.key("ratio").value(row.ratio);
    json.key("verified").value(row.verified);
    json.key("identical").value(row.identical);
    json.end_object();
  }
  json.end_array();
  json.key("checkpoints").begin_array();
  for (const CheckpointResult& ck : checkpoint_rows) {
    json.begin_object();
    json.key("objects").value(ck.objects);
    json.key("at_events").value(ck.at_events);
    json.key("bytes").value(ck.bytes);
    json.key("write_seconds").value(ck.write_seconds);
    json.key("restore_seconds").value(ck.restore_seconds);
    json.key("identical").value(ck.identical);
    json.end_object();
  }
  json.end_array();
  json.end_object();

  const std::string json_path = cli.get_string("json");
  std::ofstream out(json_path);
  out << json.str() << "\n";
  out.flush();
  if (!out) {
    std::cerr << "error: failed to write " << json_path << "\n";
    return EXIT_FAILURE;
  }
  std::cout << "wrote " << json_path << "\n";

  if (!all_identical) {
    std::cerr << "FAIL: engine aggregates diverged (serial-sweep parity or "
                 "checkpoint resume parity)\n";
    return EXIT_FAILURE;
  }
  if (verify) {
    std::cout << "engine aggregates bit-identical to the serial "
                 "per-object sweep\n";
  }
  if (checkpointing) {
    std::cout << "checkpoint resume aggregates bit-identical to the "
                 "uninterrupted serve\n";
  }
  return EXIT_SUCCESS;
}
