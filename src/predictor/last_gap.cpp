#include "predictor/last_gap.hpp"

#include "util/check.hpp"

namespace repl {

LastGapPredictor::LastGapPredictor(int num_servers, bool default_within)
    : num_servers_(num_servers), default_within_(default_within) {
  REPL_REQUIRE(num_servers >= 1);
  reset();
}

void LastGapPredictor::reset() {
  state_.assign(static_cast<std::size_t>(num_servers_), ServerState{});
}

void LastGapPredictor::save_state(StateWriter& out) const {
  out.u32(static_cast<std::uint32_t>(num_servers_));
  for (const ServerState& st : state_) {
    out.f64(st.last_time);
    out.i32(st.last_class);
  }
}

void LastGapPredictor::load_state(StateReader& in) {
  if (in.u32() != static_cast<std::uint32_t>(num_servers_)) {
    in.fail("last-gap predictor server count mismatch");
  }
  for (ServerState& st : state_) {
    st.last_time = in.f64();
    st.last_class = in.i32();
    if (st.last_class < -1 || st.last_class > 1) {
      in.fail("last-gap class out of range");
    }
  }
}

Prediction LastGapPredictor::predict(const PredictionQuery& query) {
  REPL_REQUIRE(query.server >= 0 && query.server < num_servers_);
  ServerState& st = state_[static_cast<std::size_t>(query.server)];
  if (st.last_time >= 0.0) {
    const double gap = query.time - st.last_time;
    REPL_CHECK_MSG(gap >= 0.0, "last-gap predictor fed out-of-order times");
    st.last_class = gap <= query.lambda ? 1 : 0;
  }
  st.last_time = query.time;
  if (st.last_class < 0) return Prediction{default_within_};
  return Prediction{st.last_class == 1};
}

}  // namespace repl
