// Request trace model.
//
// A trace is a strictly time-increasing sequence of data-access requests
// over `num_servers` servers. The paper's dummy request r0 (initial copy
// holder at time 0) is *not* part of the trace; it is a property of the
// system configuration (`SystemConfig::initial_server`) and the helpers
// here accept the initial server where the r0 convention matters.
#pragma once

#include <limits>
#include <string>
#include <vector>

namespace repl {

/// One data-access request: arises at `server` at time `time`.
struct Request {
  double time = 0.0;
  int server = 0;

  friend bool operator==(const Request&, const Request&) = default;
};

/// Immutable, validated request sequence.
///
/// Invariants established at construction:
///  * every server id is in [0, num_servers);
///  * times are strictly increasing and strictly positive (time 0 is
///    reserved for the dummy request r0 at the initial copy holder).
class Trace {
 public:
  /// Validates and adopts `requests`; throws std::invalid_argument if the
  /// invariants above do not hold.
  Trace(int num_servers, std::vector<Request> requests);

  /// Builds a valid trace from arbitrary input: sorts by time and nudges
  /// exact ties forward by `min_gap` (the paper assumes distinct request
  /// times; real traces have second-granularity timestamps with ties).
  static Trace from_unsorted(int num_servers, std::vector<Request> requests,
                             double min_gap = 1e-6);

  int num_servers() const { return num_servers_; }
  std::size_t size() const { return requests_.size(); }
  bool empty() const { return requests_.empty(); }
  const Request& operator[](std::size_t i) const { return requests_[i]; }
  const std::vector<Request>& requests() const { return requests_; }

  /// Time of the final request; 0 for an empty trace.
  double duration() const {
    return requests_.empty() ? 0.0 : requests_.back().time;
  }

  /// Index of the previous request at the same server, or -1 if none.
  /// Computed once at construction. Does not know about the dummy r0.
  int prev_same_server(std::size_t i) const {
    return prev_same_server_[i];
  }

  /// Index of the next request at the same server, or -1 if none.
  int next_same_server(std::size_t i) const {
    return next_same_server_[i];
  }

  /// Index of the first request at `server`, or -1 if the server never
  /// receives a request.
  int first_at_server(int server) const;

  /// Number of requests at `server`.
  std::size_t count_at_server(int server) const;

  /// Servers that receive at least one request, ascending.
  std::vector<int> active_servers() const;

 private:
  int num_servers_;
  std::vector<Request> requests_;
  std::vector<int> prev_same_server_;
  std::vector<int> next_same_server_;
  std::vector<int> first_at_server_;   // indexed by server, -1 if none
  std::vector<std::size_t> count_at_server_;
};

/// Sentinel for "no previous/next request".
inline constexpr double kNoTime = std::numeric_limits<double>::infinity();

/// Inter-request time t_i − t_{p(i)} under the paper's convention: the
/// dummy request r0 at `initial_server` at time 0 counts as the
/// predecessor of the first request at `initial_server`. Returns +inf when
/// r_i is the first request at a server other than `initial_server`.
double interarrival_to_prev(const Trace& trace, std::size_t i,
                            int initial_server);

/// Ground truth for the binary prediction issued right after request r_i:
/// will the next request at the same server arrive within `lambda`?
/// If there is no next request at that server the truth is "beyond".
bool next_gap_within_lambda(const Trace& trace, std::size_t i, double lambda);

/// Ground truth for the prediction issued for the dummy request r0 at
/// `initial_server`: will the first request at that server arrive within
/// `lambda` of time 0?
bool first_gap_within_lambda(const Trace& trace, int initial_server,
                             double lambda);

}  // namespace repl
