// Minimal JSON emission for machine-readable bench output.
//
// A forward-only writer: values are emitted as they are appended, so a
// multi-megabyte report never needs an in-memory DOM. Only what the bench
// trajectory files (BENCH_*.json) need — objects, arrays, strings,
// numbers, booleans — with round-trip double formatting and string
// escaping. Not a parser.
#pragma once

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

namespace repl {

/// Escapes `text` for inclusion in a JSON string literal (no quotes).
std::string json_escape(const std::string& text);

class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Emits the key of the next object member.
  JsonWriter& key(const std::string& name);

  JsonWriter& value(const std::string& v);
  JsonWriter& value(const char* v);
  JsonWriter& value(double v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(bool v);

  /// The document so far. Call after the outermost scope is closed.
  std::string str() const;

 private:
  void before_value();

  std::ostringstream out_;
  /// true per open scope once it has at least one element (comma needed).
  std::vector<bool> needs_comma_;
  bool after_key_ = false;
};

}  // namespace repl
