#include "predictor/noisy.hpp"

#include <sstream>

#include "predictor/oracle.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace repl {

AccuracyPredictor::AccuracyPredictor(const Trace& trace, double accuracy,
                                     std::uint64_t seed)
    : trace_(&trace), accuracy_(accuracy), seed_(seed) {
  REPL_REQUIRE(accuracy >= 0.0 && accuracy <= 1.0);
}

Prediction AccuracyPredictor::predict(const PredictionQuery& query) {
  const bool truth = ground_truth_within_lambda(*trace_, query);
  // Counter-based randomness: one SplitMix64 draw keyed by the request
  // index; stateless, hence order-independent and replayable.
  SplitMix64 sm(seed_ ^
                (0x9e3779b97f4a7c15ULL *
                 static_cast<std::uint64_t>(query.request_index + 2)));
  const double u =
      static_cast<double>(sm.next() >> 11) * 0x1.0p-53;
  const bool correct = u < accuracy_;
  return Prediction{correct ? truth : !truth};
}

std::string AccuracyPredictor::name() const {
  std::ostringstream os;
  os << "accuracy(" << accuracy_ << ")";
  return os.str();
}

}  // namespace repl
