// The live-ingest wire protocol.
//
// A client stream is byte-identical to a version-2 (compressed) event
// log: the 32-byte REPLELOG header, then codec/block.hpp frames of
// delta/varint-coded events. That identity is the point — `stream_gen`
// output can be piped onto a socket unmodified, every corruption the
// file reader detects is detected at the socket boundary by the same
// checks, and the engine cannot tell replay from live traffic.
//
//   client → server   32-byte stream header (REPLELOG, version 2,
//                     num_servers; counts unknown)
//   server → client   16-byte ACK: u64 magic "REPLNACK", u64
//                     resume_events — how many events of the logical
//                     stream the server has already ingested (non-zero
//                     when it restored from a checkpoint; the client
//                     must skip that many events before streaming)
//   client → server   block frames until the client half-closes its
//                     write side at a frame boundary (clean end)
//
// FrameAssembler is the server-side decoder: it accepts arbitrary byte
// chunks (whatever recv returned) and emits fully validated events.
// Validation is incremental and positioned — each 16-byte frame is CRC-
// verified the moment it is assembled (before a single payload byte is
// trusted), payloads are CRC-verified before decode, and event times
// must be positive, finite, and non-decreasing within the stream (the
// engine's own precondition, enforced per connection). Any violation
// throws with the frame index and stream byte offset; the server kills
// that connection, never the process.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "codec/block.hpp"
#include "obs/trace.hpp"
#include "trace/event_log.hpp"

namespace repl {

/// "REPLNACK": the server's handshake reply magic.
inline constexpr std::uint64_t kNetAckMagic = 0x4b43414e4c504552ULL;
inline constexpr std::size_t kNetAckBytes = 16;

/// Trace-context frames ride the event stream as ordinary block frames
/// whose aux field has this bit set. Event blocks can never collide:
/// their aux is the event count, capped at kMaxBlockEvents (4096), so
/// bit 31 is free. The 24-byte body is u64 trace_id, u64 span_id, u64
/// reserved (must be 0). A trace frame updates the assembler's
/// latest_trace() and decodes no events; every event that follows is
/// attributed to that context until the next trace frame.
inline constexpr std::uint32_t kTraceFrameAuxFlag = 0x80000000u;
inline constexpr std::size_t kTraceFrameBodyBytes = 24;

/// Encodes the 32-byte client stream header (a v2 event-log header with
/// unknown counts) into `out`.
void encode_stream_header(unsigned char* out, std::uint32_t num_servers);

/// Encodes the 16-byte handshake ACK into `out`.
void encode_net_ack(unsigned char* out, std::uint64_t resume_events);

/// Decodes an ACK; throws std::runtime_error on a bad magic.
std::uint64_t decode_net_ack(const unsigned char* raw);

/// Appends one framed trace-context message (see kTraceFrameAuxFlag) to
/// `out`. Requires a nonzero trace_id — zero means "no trace", which is
/// expressed by sending nothing.
void encode_trace_frame(std::vector<unsigned char>& out,
                        std::uint64_t trace_id, std::uint64_t span_id);

/// Incremental decoder for one client's byte stream. Feed bytes in any
/// chunking; completed events are appended to the caller's buffer.
class FrameAssembler {
 public:
  /// `name` labels the peer in diagnostics. `max_body_bytes` caps one
  /// frame's advertised payload (a corrupt length must fail, not
  /// allocate gigabytes).
  explicit FrameAssembler(std::string name,
                          std::size_t max_body_bytes = kMaxBlockBytes);

  /// Consumes `size` bytes, appending every event they complete to
  /// `out`. Throws std::runtime_error with a positioned diagnostic on
  /// any protocol violation; the assembler is unusable afterwards.
  void feed(const unsigned char* data, std::size_t size,
            std::vector<LogEvent>& out);

  /// True once the 32-byte stream header has been consumed+validated.
  bool header_done() const { return state_ != State::kHeader; }
  /// Valid once header_done(): version/num_servers of this stream.
  const EventLogHeader& header() const { return header_; }

  /// True when the stream position is exactly between frames — the only
  /// place a peer may close cleanly. False mid-header, mid-frame, or
  /// mid-payload: a close there is a mid-frame disconnect.
  bool at_boundary() const {
    return state_ == State::kFrame && pending_ == 0;
  }

  std::uint64_t bytes_consumed() const { return offset_; }
  std::uint64_t frames_completed() const { return frames_; }
  std::uint64_t events_decoded() const { return events_; }
  std::uint64_t trace_frames() const { return trace_frames_; }
  /// Newest decoded event time (0 before the first event).
  double last_time() const { return last_time_; }
  /// Trace context announced by the most recent trace frame; invalid
  /// (zero trace_id) until one arrives.
  obs::TraceContext latest_trace() const { return latest_trace_; }

 private:
  enum class State { kHeader, kFrame, kBody };

  [[noreturn]] void fail(const std::string& what);
  void finish_header();
  void finish_frame();
  void finish_body(std::vector<LogEvent>& out);

  std::string name_;
  std::size_t max_body_bytes_;
  State state_ = State::kHeader;
  /// Bytes accumulated toward the current header/frame/payload.
  std::vector<unsigned char> buffer_;
  /// Decode staging: a frame's events are validated here in full before
  /// they are published to the caller, so a failing frame delivers
  /// nothing.
  std::vector<LogEvent> scratch_;
  std::size_t pending_ = 0;  // bytes in buffer_
  std::size_t target_ = EventLogHeader::kSize;  // bytes needed to advance
  BlockFrameHeader frame_;
  EventLogHeader header_;
  std::uint64_t offset_ = 0;
  std::uint64_t frames_ = 0;
  std::uint64_t events_ = 0;
  std::uint64_t trace_frames_ = 0;
  double last_time_ = 0.0;
  obs::TraceContext latest_trace_{};
  bool dead_ = false;
};

}  // namespace repl
