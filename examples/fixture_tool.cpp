// fixture_tool — the capture-to-regression-test workbench.
//
// Subcommands:
//   capture   serve an event log through a spec-built engine and record
//             the session as a parity fixture (spec, slice, checkpoint
//             cuts, bit-exact aggregates)
//   replay    re-run a fixture and diff the outcome against what it
//             recorded; exit status is the verdict
//   show      print a fixture's metadata without running anything
//   fuzz      run the structured format fuzzer against one decoder,
//             optionally saving every escape as a replayable fixture
//   minimize  shrink a failing fixture while preserving its failure
//             signature, then write the minimized fixture
//   resign    re-record a failure fixture's signature from the current
//             decoder (the post-bugfix step that turns a fuzz escape
//             into a permanent regression test)
//   gen-corpus  regenerate the checked-in regression corpus: build each
//             known decoder-rejection artifact deterministically, sign
//             it against the current decoders, minimize, and write
//             fixtures/ + MANIFEST
//
// The loop this closes: `fuzz --save` turns a decoder escape into a
// fixture, the decoder gets fixed, `resign` pins the new diagnostic,
// `minimize` shrinks the input, and the result is checked into
// fixtures/ where ctest replays it forever.
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "api/experiment.hpp"
#include "cluster/control.hpp"
#include "net/wire.hpp"
#include "replay/fixture.hpp"
#include "replay/fixture_run.hpp"
#include "replay/fuzz.hpp"
#include "replay/minimize.hpp"
#include "replay/structure.hpp"
#include "trace/event_log.hpp"
#include "util/cli.hpp"

namespace {

using namespace repl;

int cmd_capture(int argc, const char* const* argv) {
  CliParser cli("fixture_tool capture",
                "Serve an event log and record the session as a fixture.");
  cli.add_flag("log", "", "event log to serve (required)");
  cli.add_flag("out", "", "fixture file to write (required)");
  cli.add_flag("policy", "drwp(alpha=0.3)", "policy spec");
  cli.add_flag("predictor", "last_gap", "predictor spec");
  cli.add_flag("lambda", "1", "transfer cost");
  cli.add_flag("shards", "0", "engine shards (0 = default)");
  cli.add_flag("threads", "1", "engine threads");
  cli.add_flag("batch", "16384", "events per ingest batch");
  cli.add_flag("seed", "0", "base seed for per-object RNG streams");
  cli.add_flag("checkpoint-every", "0",
               "record a checkpoint cut every N events (0 = none)");
  cli.add_flag("slice-format", "compressed",
               "embedded slice encoding: raw or compressed");
  cli.add_bool_flag("no-lower-bound", "skip the OPTL lower bound");
  if (!cli.parse(argc, argv)) return EXIT_SUCCESS;
  const std::string log_path = cli.get_string("log");
  const std::string out = cli.get_string("out");
  if (log_path.empty() || out.empty()) {
    std::cerr << "error: --log and --out are required\n";
    return EXIT_FAILURE;
  }

  EventLogReader reader(log_path);
  SystemConfig config;
  config.num_servers = reader.num_servers();
  config.transfer_cost = cli.get_double("lambda");

  EngineOptions options;
  if (cli.get_size_t("shards") > 0) {
    options.num_shards = cli.get_size_t("shards", 1, 1 << 16);
  }
  options.num_threads = static_cast<int>(cli.get_size_t("threads", 0, 4096));
  options.base_seed = cli.get_uint64("seed");
  options.compute_lower_bound = !cli.get_bool("no-lower-bound");

  EngineBuilder builder;
  builder.config(config)
      .options(options)
      .policy(cli.get_string("policy"))
      .predictor(cli.get_string("predictor"));
  auto engine = builder.build();

  ServeOptions serve;
  serve.batch_events = cli.get_size_t("batch", 1, std::size_t{1} << 24);
  serve.checkpoint_every = cli.get_uint64("checkpoint-every");
  if (serve.checkpoint_every > 0) serve.checkpoint_path = out + ".ckpt";
  CaptureOptions capture;
  capture.path = out;
  capture.log_format = parse_event_log_format(cli.get_string("slice-format"));
  capture.source_name = log_path;
  serve.capture = capture;

  const EngineMetrics metrics = engine->serve(reader, serve);
  const Fixture fixture = read_fixture(out);
  std::cout << "captured " << fixture.slice_events << " events ("
            << fixture.blob.size() << " slice bytes, " << fixture.cuts.size()
            << " cuts) -> " << out << "\n"
            << "aggregates: cost=" << metrics.online_cost
            << " lb=" << metrics.lower_bound
            << " transfers=" << metrics.num_transfers << "\n";
  return EXIT_SUCCESS;
}

FixtureRunOptions run_options_from(const CliParser& cli) {
  FixtureRunOptions run;
  run.num_shards = cli.get_size_t("shards", 0, 1 << 16);
  run.num_threads = static_cast<int>(cli.get_size_t("threads", 0, 4096));
  run.verify_cuts = cli.get_bool("verify-cuts");
  return run;
}

int cmd_replay(int argc, const char* const* argv) {
  CliParser cli("fixture_tool replay",
                "Replay a fixture and diff the outcome.");
  cli.add_flag("fixture", "", "fixture file (required)");
  cli.add_flag("shards", "0", "engine shards (0 = fixture default)");
  cli.add_flag("threads", "1", "engine threads");
  cli.add_bool_flag("verify-cuts",
                    "also restart from every recorded checkpoint cut");
  if (!cli.parse(argc, argv)) return EXIT_SUCCESS;
  const std::string path = cli.get_string("fixture");
  if (path.empty()) {
    std::cerr << "error: --fixture is required\n";
    return EXIT_FAILURE;
  }
  const FixtureRunResult result = fixture_run(path, run_options_from(cli));
  if (result.pass) {
    std::cout << "PASS " << path << "\n";
    return EXIT_SUCCESS;
  }
  std::cout << "FAIL " << path << "\n  " << result.detail << "\n";
  if (!result.signature.empty()) {
    std::cout << "  observed signature: " << result.signature << "\n";
  }
  return EXIT_FAILURE;
}

int cmd_show(int argc, const char* const* argv) {
  CliParser cli("fixture_tool show", "Print a fixture's metadata.");
  cli.add_flag("fixture", "", "fixture file (required)");
  if (!cli.parse(argc, argv)) return EXIT_SUCCESS;
  const std::string path = cli.get_string("fixture");
  if (path.empty()) {
    std::cerr << "error: --fixture is required\n";
    return EXIT_FAILURE;
  }
  const Fixture f = read_fixture(path);
  std::cout << "target:    " << fixture_target_name(f.target) << "\n"
            << "expect:    "
            << (f.expect == FixtureExpect::kParity ? "parity" : "failure")
            << "\n"
            << "source:    " << f.source_name << "\n"
            << "specs:     policy=" << f.policy_spec
            << " predictor=" << f.predictor_spec << "\n"
            << "system:    servers=" << f.num_servers
            << " lambda=" << f.transfer_cost << " seed=" << f.base_seed
            << "\n"
            << "slice:     " << f.slice_events << " events, "
            << f.blob.size() << " bytes, byte range [" << f.slice_begin_byte
            << ", " << f.slice_end_byte << ")\n"
            << "cuts:      " << f.cuts.size() << "\n";
  if (f.expect == FixtureExpect::kParity) {
    std::cout << "recorded:  cost=" << f.aggregates.online_cost
              << " lb=" << f.aggregates.lower_bound
              << " events=" << f.aggregates.events
              << " transfers=" << f.aggregates.num_transfers << "\n";
  } else {
    std::cout << "signature: "
              << (f.signature.empty() ? "(unset — escape-class fixture)"
                                      : f.signature)
              << "\n";
  }
  return EXIT_SUCCESS;
}

int cmd_fuzz(int argc, const char* const* argv) {
  CliParser cli("fixture_tool fuzz",
                "Structured fuzzing of one decoder format.");
  cli.add_flag("target", "log",
               "decoder to fuzz: log, snapshot, wire, or cluster");
  cli.add_flag("seed", "1", "fuzz seed");
  cli.add_flag("cases", "256", "mutated inputs to try");
  cli.add_flag("save", "", "directory for escape fixtures (optional)");
  cli.add_flag("max-failures", "16", "stop after this many escapes (0=all)");
  cli.add_bool_flag("trace", "print the per-case mutation trace");
  if (!cli.parse(argc, argv)) return EXIT_SUCCESS;
  FuzzOptions options;
  options.seed = cli.get_uint64("seed");
  options.cases = cli.get_size_t("cases", 1, std::size_t{1} << 24);
  options.save_dir = cli.get_string("save");
  options.max_failures = cli.get_size_t("max-failures");
  const FuzzTarget target = parse_fuzz_target(cli.get_string("target"));

  const FuzzReport report = fuzz_format(target, options);
  if (cli.get_bool("trace")) std::cout << report.trace;
  std::cout << fuzz_target_name(target) << ": " << report.cases << " cases, "
            << report.rejected << " rejected, " << report.accepted
            << " accepted, " << report.failures.size() << " escapes\n";
  for (const FuzzFailure& failure : report.failures) {
    std::cout << "  ESCAPE case " << failure.case_index << " ["
              << failure.mutation << "]\n    " << failure.detail << "\n";
    if (!failure.fixture_path.empty()) {
      std::cout << "    saved: " << failure.fixture_path << "\n";
    }
  }
  return report.ok() ? EXIT_SUCCESS : EXIT_FAILURE;
}

int cmd_minimize(int argc, const char* const* argv) {
  CliParser cli("fixture_tool minimize",
                "Shrink a failing fixture, preserving its signature.");
  cli.add_flag("fixture", "", "failing fixture to shrink (required)");
  cli.add_flag("out", "", "where to write the minimized fixture (required)");
  cli.add_flag("rounds", "8", "max fixed-point rounds");
  cli.add_flag("shards", "0", "engine shards for probe replays");
  cli.add_flag("threads", "1", "engine threads for probe replays");
  cli.add_bool_flag("verify-cuts", "probe with cut verification too");
  if (!cli.parse(argc, argv)) return EXIT_SUCCESS;
  const std::string path = cli.get_string("fixture");
  const std::string out = cli.get_string("out");
  if (path.empty() || out.empty()) {
    std::cerr << "error: --fixture and --out are required\n";
    return EXIT_FAILURE;
  }
  MinimizeOptions options;
  options.max_rounds = cli.get_size_t("rounds", 1, 64);
  options.run = run_options_from(cli);
  const MinimizeResult result = minimize_fixture(read_fixture(path), options);
  write_fixture(out, result.fixture);
  std::cout << "minimized " << path << ": " << result.original_bytes
            << " -> " << result.minimized_bytes << " bytes ("
            << result.fixture.slice_events << " events, " << result.probes
            << " probe replays) -> " << out << "\n"
            << "signature: " << result.signature << "\n";
  return EXIT_SUCCESS;
}

int cmd_resign(int argc, const char* const* argv) {
  CliParser cli("fixture_tool resign",
                "Re-record a failure fixture's signature from the current "
                "decoder.");
  cli.add_flag("fixture", "", "fixture to update (required)");
  cli.add_flag("out", "", "output path (defaults to --fixture, in place)");
  if (!cli.parse(argc, argv)) return EXIT_SUCCESS;
  const std::string path = cli.get_string("fixture");
  if (path.empty()) {
    std::cerr << "error: --fixture is required\n";
    return EXIT_FAILURE;
  }
  std::string out = cli.get_string("out");
  if (out.empty()) out = path;
  Fixture fixture = read_fixture(path);
  fixture.expect = FixtureExpect::kFailure;
  fixture.signature = "";
  const FixtureRunResult result = fixture_run(fixture);
  if (result.signature.empty()) {
    std::cerr << "error: replay does not fail — the decoder accepts this "
                 "input, so there is no signature to record (is the bug "
                 "actually fixed... or still present?)\n";
    return EXIT_FAILURE;
  }
  fixture.signature = result.signature;
  write_fixture(out, fixture);
  std::cout << "recorded signature -> " << out << "\n  " << fixture.signature
            << "\n";
  return EXIT_SUCCESS;
}

// ---------------------------------------------------------------------------
// gen-corpus: the deterministic regression corpus
// ---------------------------------------------------------------------------

std::vector<LogEvent> corpus_events(std::size_t n) {
  std::vector<LogEvent> events;
  events.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    events.push_back(LogEvent{0.25 * static_cast<double>(i + 1),
                              (i * 7) % 13, static_cast<std::uint32_t>(i % 3)});
  }
  return events;
}

std::vector<unsigned char> corpus_log(const ScratchDir& scratch,
                                      EventLogFormat format,
                                      std::size_t block_events,
                                      std::size_t count) {
  const std::string path = scratch.file("base.evlog");
  EventLogWriter writer(path, /*num_servers=*/3, /*num_objects=*/0, format,
                        block_events);
  for (const LogEvent& event : corpus_events(count)) writer.write(event);
  writer.close();
  return read_bytes(path);
}

Fixture corpus_fixture(FixtureTarget target, const std::string& name,
                       std::vector<unsigned char> blob) {
  Fixture fixture;
  fixture.target = target;
  fixture.expect = FixtureExpect::kFailure;
  fixture.num_servers = 3;
  if (target == FixtureTarget::kServe) {
    fixture.policy_spec = "drwp(alpha=0.3)";
    fixture.predictor_spec = "last_gap";
  }
  fixture.source_name = "gen-corpus:" + name;
  fixture.blob = std::move(blob);
  return fixture;
}

int cmd_gen_corpus(int argc, const char* const* argv) {
  CliParser cli("fixture_tool gen-corpus",
                "Regenerate the checked-in regression-fixture corpus.");
  cli.add_flag("dir", "fixtures", "output directory");
  cli.add_flag("rounds", "6", "max minimize rounds per fixture");
  if (!cli.parse(argc, argv)) return EXIT_SUCCESS;
  const std::string dir = cli.get_string("dir");
  std::filesystem::create_directories(dir);
  ScratchDir scratch;

  struct Entry {
    std::string name;
    Fixture fixture;
  };
  std::vector<Entry> entries;

  // Each artifact reproduces one decoder defect class that fuzzing or
  // auditing surfaced; the replay must keep rejecting it with the same
  // digit-stripped diagnostic forever.
  {
    // A duplicated final block past a consistent header count: the
    // trailing-data bug class (the reader once stopped at the count and
    // silently ignored the surplus).
    std::vector<unsigned char> bytes =
        corpus_log(scratch, EventLogFormat::kCompressed, 4, 10);
    const LogImage image = walk_log_image(bytes);
    const SegmentSpan& last = image.segments.back();
    const std::vector<unsigned char> dup(
        bytes.begin() + static_cast<std::ptrdiff_t>(last.offset),
        bytes.begin() + static_cast<std::ptrdiff_t>(last.end()));
    bytes.insert(bytes.end(), dup.begin(), dup.end());
    entries.push_back(
        {"log-trailing-block",
         corpus_fixture(FixtureTarget::kServe, "log-trailing-block", bytes)});
  }
  {
    // Same bug class on the raw format: a whole surplus record appended
    // past the header's count.
    std::vector<unsigned char> bytes =
        corpus_log(scratch, EventLogFormat::kRaw, 4, 5);
    const std::vector<unsigned char> dup(
        bytes.end() -
            static_cast<std::ptrdiff_t>(EventLogHeader::kRecordSize),
        bytes.end());
    bytes.insert(bytes.end(), dup.begin(), dup.end());
    entries.push_back(
        {"log-trailing-record",
         corpus_fixture(FixtureTarget::kServe, "log-trailing-record", bytes)});
  }
  {
    // A partial trailing record on a streaming (unknown-count) raw log,
    // with no whole record before it: the first refill swallows the
    // stray tail in one read, so only the end-of-log check (not a
    // second zero-byte refill) can catch it — the exact shape the
    // fuzzer escaped with.
    std::vector<unsigned char> bytes =
        corpus_log(scratch, EventLogFormat::kRaw, 4, 0);
    patch_log_event_count(bytes, EventLogHeader::kUnknownCount);
    bytes.insert(bytes.end(), 7, 0x5a);
    entries.push_back({"log-stray-tail-streaming",
                       corpus_fixture(FixtureTarget::kServe,
                                      "log-stray-tail-streaming", bytes)});
  }
  {
    // The final block's payload cut short.
    std::vector<unsigned char> bytes =
        corpus_log(scratch, EventLogFormat::kCompressed, 4, 10);
    bytes.resize(bytes.size() - 3);
    entries.push_back({"log-truncated-payload",
                       corpus_fixture(FixtureTarget::kServe,
                                      "log-truncated-payload", bytes)});
  }
  {
    // A whole block missing against a known header count.
    std::vector<unsigned char> bytes =
        corpus_log(scratch, EventLogFormat::kCompressed, 4, 10);
    const LogImage image = walk_log_image(bytes);
    bytes.resize(image.segments.back().offset);
    entries.push_back(
        {"log-missing-block",
         corpus_fixture(FixtureTarget::kServe, "log-missing-block", bytes)});
  }
  {
    // One flipped bit in a block payload (body CRC must catch it).
    std::vector<unsigned char> bytes =
        corpus_log(scratch, EventLogFormat::kCompressed, 4, 10);
    const LogImage image = walk_log_image(bytes);
    const SegmentSpan& last = image.segments.back();
    bytes[last.payload_offset + (last.size - kBlockFrameBytes) / 2] ^= 0x10;
    entries.push_back(
        {"log-bitflip-payload",
         corpus_fixture(FixtureTarget::kServe, "log-bitflip-payload", bytes)});
  }
  {
    // A wire stream that ends mid-frame (peer died or truncated send):
    // the close-time protocol error, never a clean end.
    const std::vector<LogEvent> events = corpus_events(6);
    std::vector<unsigned char> body;
    encode_event_block(events.data(), events.size(), body);
    std::vector<unsigned char> bytes(EventLogHeader::kSize);
    encode_stream_header(bytes.data(), 3);
    const std::vector<unsigned char> block =
        frame_block(static_cast<std::uint32_t>(events.size()), body);
    bytes.insert(bytes.end(), block.begin(), block.end());
    bytes.insert(bytes.end(), block.begin(), block.end());
    bytes.resize(bytes.size() - 5);
    entries.push_back(
        {"wire-midframe-close",
         corpus_fixture(FixtureTarget::kWire, "wire-midframe-close", bytes)});
  }
  {
    // A worker control stream that closes cleanly before its terminal
    // summary: the mid-serve worker death the coordinator must treat as
    // a failure, never as a finished partition.
    ControlHello hello;
    hello.partition_id = 1;
    hello.num_partitions = 4;
    hello.pf_version = 1;
    hello.num_servers = 3;
    hello.base_seed = 42;
    std::vector<unsigned char> bytes;
    encode_control_header(bytes);
    encode_control_hello(hello, bytes);
    encode_control_progress({4096, 1}, bytes);
    entries.push_back({"cluster-no-summary",
                       corpus_fixture(FixtureTarget::kCluster,
                                      "cluster-no-summary", bytes)});
  }
  {
    // Finals records out of id order inside one frame: the cross-
    // partition reduce depends on the id-sorted invariant, so the
    // decoder must reject, not silently merge out of order.
    ControlHello hello;
    hello.partition_id = 0;
    hello.num_partitions = 2;
    hello.pf_version = 1;
    hello.num_servers = 3;
    std::vector<unsigned char> bytes;
    encode_control_header(bytes);
    encode_control_hello(hello, bytes);
    EngineObjectFinal finals[2];
    finals[0].id = 7;
    finals[0].events = 3;
    finals[1].id = 3;
    finals[1].events = 2;
    encode_control_finals(finals, 2, bytes);
    entries.push_back({"cluster-finals-unsorted",
                       corpus_fixture(FixtureTarget::kCluster,
                                      "cluster-finals-unsorted", bytes)});
  }
  {
    // A progress counter that regresses: a respawned worker reporting
    // from the wrong resume position must be caught at the decoder.
    ControlHello hello;
    hello.partition_id = 0;
    hello.num_partitions = 2;
    hello.pf_version = 1;
    hello.num_servers = 3;
    std::vector<unsigned char> bytes;
    encode_control_header(bytes);
    encode_control_hello(hello, bytes);
    encode_control_progress({100, 1}, bytes);
    encode_control_progress({50, 2}, bytes);
    entries.push_back({"cluster-progress-regress",
                       corpus_fixture(FixtureTarget::kCluster,
                                      "cluster-progress-regress", bytes)});
  }
  {
    // Garbage appended after a snapshot's footer.
    SystemConfig config;
    config.num_servers = 3;
    EngineBuilder builder;
    builder.config(config).policy("drwp(alpha=0.3)").predictor("last_gap");
    auto engine = builder.build();
    engine->ingest(corpus_events(12));
    const std::string path = scratch.file("base.ckpt");
    engine->checkpoint(path);
    std::vector<unsigned char> bytes = read_bytes(path);
    bytes.insert(bytes.end(), 16, 0xa5);
    entries.push_back({"snapshot-trailing-garbage",
                       corpus_fixture(FixtureTarget::kSnapshot,
                                      "snapshot-trailing-garbage", bytes)});
  }

  MinimizeOptions options;
  options.max_rounds = cli.get_size_t("rounds", 1, 64);
  std::string manifest =
      "# Minimized decoder-regression fixtures, replayed by "
      "fixture_regression_test.\n"
      "# Regenerate: fixture_tool gen-corpus --dir fixtures\n";
  for (const Entry& entry : entries) {
    const MinimizeResult result = minimize_fixture(entry.fixture, options);
    const std::string path = dir + "/" + entry.name + ".replfixt";
    write_fixture(path, result.fixture);
    manifest += entry.name + ".replfixt\n";
    std::cout << entry.name << ": " << result.original_bytes << " -> "
              << result.minimized_bytes << " bytes\n  " << result.signature
              << "\n";
  }
  std::ofstream out(dir + "/MANIFEST", std::ios::trunc);
  out << manifest;
  out.flush();
  if (!out) {
    std::cerr << "error: cannot write " << dir << "/MANIFEST\n";
    return EXIT_FAILURE;
  }
  std::cout << entries.size() << " fixtures -> " << dir << "/MANIFEST\n";
  return EXIT_SUCCESS;
}

void usage() {
  std::cout << "usage: fixture_tool <capture|replay|show|fuzz|minimize|"
               "resign|gen-corpus> [flags]\n"
               "       fixture_tool <subcommand> --help for flags\n";
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return EXIT_FAILURE;
  }
  const std::string cmd = argv[1];
  try {
    if (cmd == "capture") return cmd_capture(argc - 1, argv + 1);
    if (cmd == "replay") return cmd_replay(argc - 1, argv + 1);
    if (cmd == "show") return cmd_show(argc - 1, argv + 1);
    if (cmd == "fuzz") return cmd_fuzz(argc - 1, argv + 1);
    if (cmd == "minimize") return cmd_minimize(argc - 1, argv + 1);
    if (cmd == "resign") return cmd_resign(argc - 1, argv + 1);
    if (cmd == "gen-corpus") return cmd_gen_corpus(argc - 1, argv + 1);
    if (cmd == "--help" || cmd == "-h" || cmd == "help") {
      usage();
      return EXIT_SUCCESS;
    }
    std::cerr << "error: unknown subcommand '" << cmd << "'\n";
    usage();
    return EXIT_FAILURE;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return EXIT_FAILURE;
  }
}
