#include "replay/structure.hpp"

#include <atomic>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <stdexcept>

#ifdef __unix__
#include <unistd.h>
#endif

#include "checkpoint/snapshot.hpp"
#include "codec/block.hpp"
#include "codec/crc32.hpp"
#include "trace/event_log.hpp"

namespace repl {

std::uint64_t LogImage::items_before(std::size_t count) const {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < count && i < segments.size(); ++i) {
    total += segments[i].items;
  }
  return total;
}

LogImage walk_log_image(const std::vector<unsigned char>& bytes) {
  LogImage image;
  if (bytes.size() < EventLogHeader::kSize) {
    image.tail_offset = 0;
    return image;
  }
  const std::uint64_t magic = load_le64(bytes.data());
  const std::uint32_t version = load_le32(bytes.data() + 8);
  image.version = version;
  image.num_servers = load_le32(bytes.data() + 12);
  image.num_objects = load_le64(bytes.data() + 16);
  image.num_events = load_le64(bytes.data() + 24);
  if (magic != EventLogHeader::kMagic ||
      (version != EventLogHeader::kVersionRaw &&
       version != EventLogHeader::kVersionCompressed)) {
    image.tail_offset = 0;
    return image;
  }
  image.header_ok = true;
  image.header_bytes = EventLogHeader::kSize;
  std::size_t at = image.header_bytes;

  if (version == EventLogHeader::kVersionRaw) {
    while (bytes.size() - at >= EventLogHeader::kRecordSize) {
      SegmentSpan span;
      span.offset = at;
      span.size = EventLogHeader::kRecordSize;
      span.payload_offset = at;
      span.items = 1;
      span.well_formed = true;  // v1 records carry no CRC
      image.segments.push_back(span);
      at += EventLogHeader::kRecordSize;
    }
    image.tail_offset = at;
    return image;
  }

  while (bytes.size() - at >= kBlockFrameBytes) {
    BlockFrameHeader frame;
    if (parse_block_frame(bytes.data() + at, frame) != BlockFrameStatus::kOk) {
      break;
    }
    if (bytes.size() - at - kBlockFrameBytes < frame.body_len) break;
    SegmentSpan span;
    span.offset = at;
    span.size = kBlockFrameBytes + frame.body_len;
    span.payload_offset = at + kBlockFrameBytes;
    span.items = frame.aux;
    span.well_formed = verify_block_payload(
        frame, bytes.data() + span.payload_offset, frame.body_len);
    image.segments.push_back(span);
    at += span.size;
  }
  image.tail_offset = at;
  return image;
}

SnapshotImage walk_snapshot_image(const std::vector<unsigned char>& bytes) {
  SnapshotImage image;
  if (bytes.size() < SnapshotHeader::kSize) return image;
  if (load_le64(bytes.data()) != SnapshotHeader::kMagic) return image;
  const std::uint32_t version = load_le32(bytes.data() + 8);
  image.version = version;
  if (version == 0 || version > SnapshotHeader::kVersion) return image;
  image.num_objects = load_le64(bytes.data() + 16);

  std::size_t header_bytes = SnapshotHeader::kSize;
  if (version >= 2) {
    header_bytes += SnapshotHeader::kExtensionSize;
    // A snapshot truncated inside the extension must walk as
    // header_ok=false; without this guard the subtractions below
    // underflow and read past the buffer.
    if (header_bytes > bytes.size()) return image;
    // Two length-prefixed spec strings, then (v3) the codec word.
    // Each check below keeps header_bytes <= bytes.size(), so the
    // size_t subtractions cannot underflow.
    for (int spec = 0; spec < 2; ++spec) {
      if (bytes.size() - header_bytes < 4) return image;
      const std::uint32_t len = load_le32(bytes.data() + header_bytes);
      header_bytes += 4;
      if (bytes.size() - header_bytes < len) return image;
      header_bytes += len;
    }
    if (version >= 3) {
      if (bytes.size() - header_bytes < 4) return image;
      header_bytes += 4;
    }
  }
  image.header_ok = true;
  image.header_bytes = header_bytes;

  const std::size_t prefix =
      version >= 3 ? std::size_t{20} : std::size_t{12};
  std::size_t at = header_bytes;
  while (image.records.size() < image.num_objects &&
         bytes.size() - at >= prefix) {
    const std::uint32_t encoded_len = load_le32(bytes.data() + at + 8);
    if (encoded_len > SnapshotHeader::kMaxEncodedRecordBytes) break;
    if (bytes.size() - at - prefix < encoded_len) break;
    SegmentSpan span;
    span.offset = at;
    span.size = prefix + encoded_len;
    span.payload_offset = at + prefix;
    span.items = 1;
    if (version >= 3) {
      const std::uint32_t stored = load_le32(bytes.data() + at + 16);
      std::uint32_t crc = crc32c_init();
      crc = crc32c_update(crc, bytes.data() + at, 16);
      crc = crc32c_update(crc, bytes.data() + span.payload_offset,
                          encoded_len);
      span.well_formed = crc32c_final(crc) == stored;
    } else {
      span.well_formed = true;
    }
    image.records.push_back(span);
    at += span.size;
  }
  image.tail_offset = at;
  if (bytes.size() - at >= 8 &&
      load_le64(bytes.data() + at) == SnapshotHeader::kFooterMagic) {
    image.footer_present = true;
    image.footer_offset = at;
    image.tail_offset = at + 8;
  }
  return image;
}

ControlImage walk_control_image(const std::vector<unsigned char>& bytes) {
  // Layout re-derived from cluster/control.hpp: magic "REPLCCTL",
  // version 1, 4 reserved bytes, then v2-style block frames.
  constexpr std::uint64_t kControlMagic = 0x4c5443434c504552ULL;
  constexpr std::size_t kControlHeaderBytes = 16;
  ControlImage image;
  if (bytes.size() < kControlHeaderBytes) return image;
  if (load_le64(bytes.data()) != kControlMagic ||
      load_le32(bytes.data() + 8) != 1) {
    return image;
  }
  image.header_ok = true;
  image.header_bytes = kControlHeaderBytes;
  std::size_t at = image.header_bytes;
  while (bytes.size() - at >= kBlockFrameBytes) {
    BlockFrameHeader frame;
    if (parse_block_frame(bytes.data() + at, frame) != BlockFrameStatus::kOk) {
      break;
    }
    if (bytes.size() - at - kBlockFrameBytes < frame.body_len) break;
    SegmentSpan span;
    span.offset = at;
    span.size = kBlockFrameBytes + frame.body_len;
    span.payload_offset = at + kBlockFrameBytes;
    span.items = frame.aux & 0x00ffffffu;
    span.well_formed = verify_block_payload(
        frame, bytes.data() + span.payload_offset, frame.body_len);
    image.segments.push_back(span);
    at += span.size;
  }
  image.tail_offset = at;
  return image;
}

void patch_log_event_count(std::vector<unsigned char>& bytes,
                           std::uint64_t num_events) {
  if (bytes.size() < EventLogHeader::kSize) return;
  store_le64(bytes.data() + 24, num_events);
}

void patch_snapshot_object_count(std::vector<unsigned char>& bytes,
                                 std::uint64_t num_objects) {
  if (bytes.size() < SnapshotHeader::kSize) return;
  store_le64(bytes.data() + 16, num_objects);
}

std::vector<unsigned char> frame_block(
    std::uint32_t aux, const std::vector<unsigned char>& body) {
  std::vector<unsigned char> block(kBlockFrameBytes + body.size());
  encode_block_frame(block.data(), aux, body.data(), body.size());
  if (!body.empty()) {
    std::memcpy(block.data() + kBlockFrameBytes, body.data(), body.size());
  }
  return block;
}

void refresh_frame_crc(std::vector<unsigned char>& bytes, std::size_t offset) {
  if (bytes.size() < kBlockFrameBytes ||
      offset > bytes.size() - kBlockFrameBytes) {
    return;
  }
  store_le32(bytes.data() + offset + 12,
             crc32c(bytes.data() + offset, 12));
}

void refresh_record_crc(std::vector<unsigned char>& bytes,
                        std::size_t offset) {
  if (bytes.size() < 20 || offset > bytes.size() - 20) return;
  const std::uint32_t encoded_len = load_le32(bytes.data() + offset + 8);
  if (bytes.size() - offset - 20 < encoded_len) return;
  std::uint32_t crc = crc32c_init();
  crc = crc32c_update(crc, bytes.data() + offset, 16);
  crc = crc32c_update(crc, bytes.data() + offset + 20, encoded_len);
  store_le32(bytes.data() + offset + 16, crc32c_final(crc));
}

ScratchDir::ScratchDir(const std::string& requested) {
  if (!requested.empty()) {
    dir_ = requested;
    std::filesystem::create_directories(dir_);
    owned_ = false;
    return;
  }
  static std::atomic<std::uint64_t> counter{0};
  const std::uint64_t id = counter.fetch_add(1);
#ifdef __unix__
  const std::uint64_t pid = static_cast<std::uint64_t>(::getpid());
#else
  const std::uint64_t pid = 0;
#endif
  dir_ = (std::filesystem::temp_directory_path() /
          ("replfixt-" + std::to_string(pid) + "-" + std::to_string(id)))
             .string();
  std::filesystem::create_directories(dir_);
}

ScratchDir::~ScratchDir() {
  if (owned_) {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }
}

std::string ScratchDir::file(const std::string& basename) const {
  return (std::filesystem::path(dir_) / basename).string();
}

void write_bytes(const std::string& path,
                 const std::vector<unsigned char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("cannot write scratch file " + path);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  out.flush();
  if (!out) throw std::runtime_error("scratch write failed: " + path);
}

std::vector<unsigned char> read_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot read " + path);
  std::vector<unsigned char> bytes(
      (std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  if (in.bad()) throw std::runtime_error("read failed: " + path);
  return bytes;
}

}  // namespace repl
