// Quickstart: the smallest end-to-end use of the library.
//
//   1. generate a workload trace (Poisson arrivals over 5 servers),
//   2. attach a predictor (here: 80%-accurate synthetic forecasts),
//   3. run Algorithm 1 (DRWP) with distrust alpha = 0.3,
//   4. normalize the cost by the exact offline optimum.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart [--lambda=50] [--alpha=0.3] [--seed=1]
#include <iostream>

#include "analysis/ratio.hpp"
#include "core/drwp.hpp"
#include "core/simulator.hpp"
#include "offline/opt_dp.hpp"
#include "predictor/noisy.hpp"
#include "trace/generators.hpp"
#include "trace/trace_stats.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  repl::CliParser cli("quickstart", "minimal DRWP walkthrough");
  cli.add_flag("lambda", "50", "transfer cost λ");
  cli.add_flag("alpha", "0.3", "distrust in predictions, (0,1]");
  cli.add_flag("accuracy", "0.8", "prediction accuracy in [0,1]");
  cli.add_flag("seed", "1", "workload seed");
  if (!cli.parse(argc, argv)) return 0;

  // 1. A day of Poisson traffic over 5 servers, Zipf-skewed.
  const repl::Trace trace = repl::generate_poisson_trace(
      /*num_servers=*/5, /*rate=*/0.02, /*horizon=*/86400.0,
      repl::ServerAssignment{}, cli.get_uint64("seed"));
  std::cout << "workload: " << repl::compute_trace_stats(trace).summary()
            << "\n";

  // 2. System model: storage costs 1/s per copy, transfers cost λ, the
  //    object starts on server 0.
  repl::SystemConfig config;
  config.num_servers = 5;
  config.transfer_cost = cli.get_double("lambda");

  // 3. Binary next-arrival forecasts, correct with probability
  //    `accuracy` (the paper's Appendix-J prediction model).
  repl::AccuracyPredictor predictor(trace, cli.get_double("accuracy"),
                                    /*seed=*/42);

  // 4. Algorithm 1 with hyper-parameter alpha, measured against the
  //    exact offline optimum.
  repl::DrwpPolicy policy(cli.get_double("alpha"));
  const repl::RatioReport report =
      repl::evaluate_policy(config, policy, trace, predictor);

  std::cout << "policy:            " << report.policy_name << "\n"
            << "predictor:         " << report.predictor_name << "\n"
            << "online cost:       " << report.online_cost << "\n"
            << "  transfers:       " << report.num_transfers << "\n"
            << "  local serves:    " << report.num_local << "\n"
            << "optimal cost:      " << report.opt_cost << "\n"
            << "OPT lower bound:   " << report.opt_lower << "\n"
            << "competitive ratio: " << report.ratio << "\n"
            << "robustness bound:  "
            << repl::robustness_bound(cli.get_double("alpha")) << "\n"
            << "consistency bound: "
            << repl::consistency_bound(cli.get_double("alpha")) << "\n";
  return 0;
}
