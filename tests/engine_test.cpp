// Streaming engine tests. The load-bearing property: engine aggregates
// are bit-identical to running every object's subsequence through the
// batch Simulator serially in object-id order — for 1, 4, and
// hardware-concurrency threads, across shard counts, including randomized
// per-object components seeded from the object id.
#include <cstdint>
#include <filesystem>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/drwp.hpp"
#include "core/simulator.hpp"
#include "engine/engine.hpp"
#include "extensions/randomized_drwp.hpp"
#include "offline/opt_lower_bound.hpp"
#include "predictor/last_gap.hpp"
#include "run/parallel_runner.hpp"
#include "trace/event_log.hpp"
#include "trace/stream_gen.hpp"
#include "trace/trace.hpp"
#include "util/check.hpp"

namespace repl {
namespace {

constexpr double kAlpha = 0.3;

SystemConfig engine_config(int num_servers) {
  SystemConfig config;
  config.num_servers = num_servers;
  config.transfer_cost = 10.0;
  return config;
}

EnginePolicyFactory drwp_factory() {
  return [](const EngineObjectContext&) -> PolicyPtr {
    return std::make_unique<DrwpPolicy>(kAlpha);
  };
}

EnginePolicyFactory randomized_factory() {
  return [](const EngineObjectContext& context) -> PolicyPtr {
    return std::make_unique<RandomizedDrwpPolicy>(kAlpha, context.seed);
  };
}

EnginePredictorFactory last_gap_factory(int num_servers) {
  return [num_servers](const EngineObjectContext&) -> PredictorPtr {
    return std::make_unique<LastGapPredictor>(num_servers);
  };
}

/// The serial reference: group the stream per object (id order), run the
/// batch Simulator + OPTL per object, reduce in id order.
struct SerialReference {
  std::size_t objects = 0;
  std::size_t events = 0;
  std::size_t num_local = 0;
  std::size_t num_transfers = 0;
  double online_cost = 0.0;
  double lower_bound = 0.0;
};

SerialReference serial_reference(const std::vector<LogEvent>& events,
                                 const SystemConfig& config,
                                 bool randomized, std::uint64_t base_seed) {
  std::map<std::uint64_t, std::vector<Request>> per_object;
  for (const LogEvent& e : events) {
    per_object[e.object].push_back(
        Request{e.time, static_cast<int>(e.server)});
  }

  SerialReference ref;
  SimulationOptions options;
  options.record_events = false;
  const Simulator simulator(config, options);
  for (const auto& [id, requests] : per_object) {
    const Trace trace(config.num_servers, requests);
    const std::uint64_t seed = ParallelRunner::object_seed(
        base_seed, static_cast<std::size_t>(id));
    PolicyPtr policy;
    if (randomized) {
      policy = std::make_unique<RandomizedDrwpPolicy>(kAlpha, seed);
    } else {
      policy = std::make_unique<DrwpPolicy>(kAlpha);
    }
    LastGapPredictor predictor(config.num_servers);
    const SimulationResult result =
        simulator.run(*policy, trace, predictor);
    ++ref.objects;
    ref.events += trace.size();
    ref.num_local += result.num_local;
    ref.num_transfers += result.num_transfers;
    ref.online_cost += result.total_cost();
    ref.lower_bound += opt_lower_bound(config, trace);
  }
  return ref;
}

class EngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("repl_engine_test_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  std::string temp_path(const std::string& name) {
    return (dir_ / name).string();
  }

  std::filesystem::path dir_;
};

std::string make_log(const std::string& path, std::uint64_t num_objects,
                     int num_servers, double rate, double horizon,
                     std::uint64_t seed) {
  StreamWorkloadConfig config;
  config.num_objects = num_objects;
  config.num_servers = num_servers;
  config.rate = rate;
  config.horizon = horizon;
  generate_event_log(config, seed, path);
  return path;
}

std::vector<LogEvent> read_all(const std::string& path) {
  EventLogReader reader(path);
  std::vector<LogEvent> events;
  LogEvent event;
  while (reader.next(event)) events.push_back(event);
  return events;
}

/// The acceptance-criteria matrix: engine == serial Simulator sweep, at
/// 1 / 4 / hardware-concurrency threads and several shard counts.
TEST_F(EngineTest, AggregatesBitIdenticalToSerialSimulator) {
  const SystemConfig config = engine_config(6);
  const std::string log =
      make_log(temp_path("w.evlog"), 300, 6, 3.0, 3000.0, 21);
  const std::vector<LogEvent> events = read_all(log);
  ASSERT_GT(events.size(), 2000u);

  const SerialReference ref =
      serial_reference(events, config, /*randomized=*/false,
                       EngineOptions{}.base_seed);

  for (const int threads : {1, 4, 0 /* hardware concurrency */}) {
    for (const std::size_t shards : {std::size_t{1}, std::size_t{7},
                                     std::size_t{64}}) {
      EngineOptions options;
      options.num_threads = threads;
      options.num_shards = shards;
      EngineStats stats;
      const EngineMetrics metrics = serve_event_log(
          log, config, options, drwp_factory(), last_gap_factory(6),
          &stats);

      SCOPED_TRACE("threads=" + std::to_string(threads) +
                   " shards=" + std::to_string(shards));
      EXPECT_EQ(metrics.objects, ref.objects);
      EXPECT_EQ(metrics.events, ref.events);
      EXPECT_EQ(metrics.num_local, ref.num_local);
      EXPECT_EQ(metrics.num_transfers, ref.num_transfers);
      EXPECT_EQ(metrics.online_cost, ref.online_cost);   // bit-identical
      EXPECT_EQ(metrics.lower_bound, ref.lower_bound);   // bit-identical
      EXPECT_EQ(stats.events_ingested, ref.events);
      EXPECT_EQ(metrics.shards.size(), shards);
    }
  }
}

/// Randomized policies draw from object_seed(base_seed, id): results must
/// not depend on shard layout or scheduling.
TEST_F(EngineTest, RandomizedPolicySeedsAreShardAndThreadInvariant) {
  const SystemConfig config = engine_config(4);
  const std::string log =
      make_log(temp_path("r.evlog"), 120, 4, 2.0, 1500.0, 33);
  const std::vector<LogEvent> events = read_all(log);

  const SerialReference ref =
      serial_reference(events, config, /*randomized=*/true,
                       EngineOptions{}.base_seed);

  for (const int threads : {1, 4}) {
    for (const std::size_t shards : {std::size_t{3}, std::size_t{32}}) {
      EngineOptions options;
      options.num_threads = threads;
      options.num_shards = shards;
      const EngineMetrics metrics =
          serve_event_log(log, config, options, randomized_factory(),
                          last_gap_factory(4), nullptr);
      SCOPED_TRACE("threads=" + std::to_string(threads) +
                   " shards=" + std::to_string(shards));
      EXPECT_EQ(metrics.online_cost, ref.online_cost);
      EXPECT_EQ(metrics.num_transfers, ref.num_transfers);
    }
  }
}

TEST_F(EngineTest, ShardMetricsPartitionTheGlobals) {
  const SystemConfig config = engine_config(5);
  const std::string log =
      make_log(temp_path("s.evlog"), 200, 5, 2.0, 2000.0, 5);
  EngineOptions options;
  options.num_shards = 16;
  options.num_threads = 1;
  const EngineMetrics metrics = serve_event_log(
      log, config, options, drwp_factory(), last_gap_factory(5), nullptr);

  std::size_t objects = 0, events = 0, local = 0, transfers = 0;
  for (const EngineShardMetrics& shard : metrics.shards) {
    objects += shard.objects;
    events += shard.events;
    local += shard.num_local;
    transfers += shard.num_transfers;
  }
  EXPECT_EQ(objects, metrics.objects);
  EXPECT_EQ(events, metrics.events);
  EXPECT_EQ(local, metrics.num_local);
  EXPECT_EQ(transfers, metrics.num_transfers);
  EXPECT_GT(metrics.ratio(), 1.0);  // online pays at least OPTL
}

TEST_F(EngineTest, LazyInstantiationOnlyMaterializesRequestedObjects) {
  const SystemConfig config = engine_config(3);
  StreamingEngine engine(config, EngineOptions{}, drwp_factory(),
                         last_gap_factory(3));
  // Ids are sparse over a huge space — the table only holds what it saw.
  const std::vector<LogEvent> events = {
      {1.0, 0, 0}, {2.0, 1u << 20, 1}, {3.0, 0, 2}, {4.0, 0xffffffffffULL, 0}};
  engine.ingest(events);
  EXPECT_EQ(engine.object_count(), 3u);
  const EngineMetrics metrics = engine.finish();
  EXPECT_EQ(metrics.objects, 3u);
  EXPECT_EQ(metrics.events, 4u);
}

TEST_F(EngineTest, MultiBatchIngestEqualsSingleServe) {
  const SystemConfig config = engine_config(4);
  const std::string log =
      make_log(temp_path("b.evlog"), 80, 4, 1.0, 1000.0, 9);
  const std::vector<LogEvent> events = read_all(log);

  EngineOptions options;
  options.num_shards = 8;
  options.num_threads = 4;

  // One call per event (worst-case batching)...
  StreamingEngine drip(config, options, drwp_factory(),
                       last_gap_factory(4));
  for (const LogEvent& e : events) drip.ingest(&e, 1);
  const EngineMetrics dripped = drip.finish();

  // ...equals one giant batch.
  StreamingEngine bulk(config, options, drwp_factory(),
                       last_gap_factory(4));
  bulk.ingest(events);
  const EngineMetrics bulked = bulk.finish();

  EXPECT_EQ(dripped.online_cost, bulked.online_cost);
  EXPECT_EQ(dripped.lower_bound, bulked.lower_bound);
  EXPECT_EQ(dripped.num_transfers, bulked.num_transfers);
  EXPECT_EQ(dripped.events, bulked.events);
}

TEST_F(EngineTest, RejectsOutOfOrderStreams) {
  const SystemConfig config = engine_config(2);
  StreamingEngine engine(config, EngineOptions{}, drwp_factory(),
                         last_gap_factory(2));
  const std::vector<LogEvent> bad = {{2.0, 0, 0}, {1.0, 1, 0}};
  EXPECT_THROW(engine.ingest(bad), std::invalid_argument);
  // Unknown servers and non-positive times are likewise caught by the
  // pre-routing validation.
  EXPECT_THROW(engine.ingest({{{1.0, 0, 2}}}), std::invalid_argument);
  EXPECT_THROW(engine.ingest({{{0.0, 0, 0}}}), std::invalid_argument);
  // The rejections happened before any routing: no event of a bad
  // batch (including its in-order prefix) was served, and the engine
  // accepts a corrected batch afterwards.
  EXPECT_EQ(engine.object_count(), 0u);
  engine.ingest({{{2.0, 0, 0}, {2.5, 1, 0}}});
  const EngineMetrics metrics = engine.finish();
  EXPECT_EQ(metrics.objects, 2u);
  EXPECT_EQ(metrics.events, 2u);

  StreamingEngine engine2(config, EngineOptions{}, drwp_factory(),
                          last_gap_factory(2));
  engine2.ingest({{{2.0, 0, 0}}});
  // Order is enforced across batches too.
  const std::vector<LogEvent> earlier = {{1.5, 1, 0}};
  EXPECT_THROW(engine2.ingest(earlier), std::invalid_argument);
  // A per-object time tie violates the Trace invariants. This throw
  // comes from *inside* shard execution, so the engine is poisoned and
  // later calls fail fast instead of serving a half-applied stream.
  const std::vector<LogEvent> tie = {{2.0, 0, 1}};
  EXPECT_THROW(engine2.ingest(tie), std::invalid_argument);
  EXPECT_THROW(engine2.ingest({{{3.0, 1, 0}}}), CheckFailure);
  EXPECT_THROW(engine2.finish(), CheckFailure);
}

TEST_F(EngineTest, FinishIsTerminal) {
  const SystemConfig config = engine_config(2);
  StreamingEngine engine(config, EngineOptions{}, drwp_factory(),
                         last_gap_factory(2));
  engine.ingest({{{1.0, 0, 0}}});
  engine.finish();
  EXPECT_THROW(engine.ingest({{{2.0, 0, 0}}}), CheckFailure);
  EXPECT_THROW(engine.finish(), CheckFailure);
}

TEST_F(EngineTest, EmptyStreamYieldsEmptyMetrics) {
  const SystemConfig config = engine_config(2);
  StreamingEngine engine(config, EngineOptions{}, drwp_factory(),
                         last_gap_factory(2));
  const EngineMetrics metrics = engine.finish();
  EXPECT_EQ(metrics.objects, 0u);
  EXPECT_EQ(metrics.events, 0u);
  EXPECT_EQ(metrics.online_cost, 0.0);
  EXPECT_EQ(metrics.ratio(), 1.0);
}

/// The OnlineSimulation step/finish path must agree with Simulator::run
/// (which now delegates to it — this guards the contract either way).
TEST_F(EngineTest, OnlineSimulationMatchesBatchSimulator) {
  const SystemConfig config = engine_config(4);
  const std::string log =
      make_log(temp_path("o.evlog"), 1, 4, 0.5, 2000.0, 77);
  const std::vector<LogEvent> events = read_all(log);
  std::vector<Request> requests;
  for (const LogEvent& e : events) {
    requests.push_back(Request{e.time, static_cast<int>(e.server)});
  }
  const Trace trace(4, requests);

  DrwpPolicy batch_policy(kAlpha);
  LastGapPredictor batch_predictor(4);
  const SimulationResult batch =
      Simulator(config).run(batch_policy, trace, batch_predictor);

  DrwpPolicy online_policy(kAlpha);
  LastGapPredictor online_predictor(4);
  OnlineSimulation online(config, SimulationOptions{}, online_policy,
                          online_predictor);
  for (const Request& r : trace.requests()) online.step(r.server, r.time);
  EXPECT_EQ(online.steps(), trace.size());
  EXPECT_EQ(online.last_time(), trace.duration());
  const SimulationResult streamed = online.finish();

  EXPECT_EQ(streamed.total_cost(), batch.total_cost());
  EXPECT_EQ(streamed.storage_cost, batch.storage_cost);
  EXPECT_EQ(streamed.transfer_cost, batch.transfer_cost);
  EXPECT_EQ(streamed.num_local, batch.num_local);
  EXPECT_EQ(streamed.horizon, batch.horizon);
  EXPECT_EQ(streamed.serves.size(), batch.serves.size());
  EXPECT_EQ(streamed.segments.size(), batch.segments.size());
}

/// Resume-parity across the interruption (the checkpoint acceptance
/// criterion): a serve interrupted at 1/4, 1/2, and 3/4 of the log and
/// restored with *different* shard/thread counts must still match the
/// serial per-object Simulator sweep bit for bit.
TEST_F(EngineTest, ResumeParityAtAnyCutShardAndThreadCount) {
  const SystemConfig config = engine_config(6);
  const std::string log =
      make_log(temp_path("ck.evlog"), 250, 6, 3.0, 2500.0, 55);
  const std::vector<LogEvent> events = read_all(log);
  ASSERT_GT(events.size(), 2000u);

  const SerialReference ref =
      serial_reference(events, config, /*randomized=*/false,
                       EngineOptions{}.base_seed);

  struct Geometry {
    std::size_t shards;
    int threads;
  };
  const Geometry before[] = {{1, 1}, {7, 4}, {64, 0}};
  const Geometry after[] = {{32, 4}, {1, 1}, {5, 2}};

  for (const double fraction : {0.25, 0.5, 0.75}) {
    const auto cut =
        static_cast<std::size_t>(fraction *
                                 static_cast<double>(events.size()));
    for (std::size_t g = 0; g < std::size(before); ++g) {
      SCOPED_TRACE("fraction=" + std::to_string(fraction) +
                   " geometry=" + std::to_string(g));
      const std::string ckpt =
          temp_path("cut_" + std::to_string(cut) + "_" + std::to_string(g) +
                    ".ckpt");
      {
        EngineOptions options;
        options.num_shards = before[g].shards;
        options.num_threads = before[g].threads;
        StreamingEngine engine(config, options, drwp_factory(),
                               last_gap_factory(6));
        engine.ingest(events.data(), cut);
        engine.checkpoint(ckpt);
        // Dropped without finish(): the interruption.
      }
      EngineOptions options;
      options.num_shards = after[g].shards;
      options.num_threads = after[g].threads;
      auto resumed = StreamingEngine::restore(ckpt, config, options,
                                              drwp_factory(),
                                              last_gap_factory(6));
      EXPECT_EQ(resumed->resume_position(), cut);
      // Resume through the reader path (seeks past the consumed prefix).
      EventLogReader reader(log);
      const EngineMetrics metrics = resumed->serve(reader);

      EXPECT_EQ(metrics.objects, ref.objects);
      EXPECT_EQ(metrics.events, ref.events);
      EXPECT_EQ(metrics.num_local, ref.num_local);
      EXPECT_EQ(metrics.num_transfers, ref.num_transfers);
      EXPECT_EQ(metrics.online_cost, ref.online_cost);   // bit-identical
      EXPECT_EQ(metrics.lower_bound, ref.lower_bound);   // bit-identical
    }
  }
}

/// StreamingLowerBound mirrors the batch OPTL bit for bit.
TEST_F(EngineTest, StreamingLowerBoundMatchesBatch) {
  const SystemConfig config = engine_config(5);
  const std::string log =
      make_log(temp_path("lb.evlog"), 1, 5, 0.8, 4000.0, 13);
  const std::vector<LogEvent> events = read_all(log);
  std::vector<Request> requests;
  for (const LogEvent& e : events) {
    requests.push_back(Request{e.time, static_cast<int>(e.server)});
  }
  const Trace trace(5, requests);

  StreamingLowerBound streaming(config);
  for (const Request& r : trace.requests()) streaming.step(r.server, r.time);
  EXPECT_EQ(streaming.value(), opt_lower_bound(config, trace));
}

}  // namespace
}  // namespace repl
