// Cluster control protocol: the worker → coordinator side-channel.
//
// The event plane of a cluster is the existing v2 wire protocol (the
// coordinator is just an EventStreamClient per worker; each worker is a
// NetIngestServer). The control plane runs the other way, one stream per
// worker, and carries everything the coordinator needs that events
// cannot: the worker's identity and resume position, per-batch progress
// for lag metrics, checkpoint notifications, and — after the worker's
// slice drains — the id-sorted per-object finals plus a summary for the
// deterministic cross-partition reduce.
//
// Stream layout (little-endian):
//   offset  size  field
//   0       8     magic "REPLCCTL"
//   8       4     version (1)
//   12      4     reserved (0)
// followed by codec/block.hpp frames (body_len / aux / body CRC / frame
// CRC — the same envelope as the v2 event wire), where
//   aux = (message type << 24) | item count.
// Item count is the number of finals records in a kFinals frame and must
// be 0 for every other type.
//
// Message bodies:
//   kHello (32 B)      u32 partition_id, u32 num_partitions,
//                      u32 pf_version, u32 num_servers,
//                      u64 resume_events, u64 base_seed
//   kProgress (16 B)   u64 events_ingested, u64 batches
//   kCheckpoint (8 B)  u64 events_ingested
//   kFinals (48 B/rec) per record: u64 id, u64 events, u64 num_local,
//                      u64 num_transfers, f64 online_cost,
//                      f64 lower_bound (doubles as IEEE-754 bit patterns)
//   kSummary (48 B)    u64 objects, u64 events, u64 num_local,
//                      u64 num_transfers, f64 online_cost, f64 lower_bound
//   kMetrics (>= 16 B) u64 trace_id, u64 span_id (0 when no trace is
//                      active), then `count` obs::Sample records in the
//                      obs/federation.hpp sample codec — the worker's
//                      metrics snapshot the coordinator federates.
//                      Unlike every other type, count is the sample
//                      count, not 0.
//
// Protocol state machine, enforced by the assembler: kHello first and
// exactly once; kProgress/kCheckpoint counters never regress; kMetrics
// is only valid between hello and the first kFinals; once the
// first kFinals frame arrives only kFinals/kSummary may follow, with
// record ids strictly increasing across the whole finals sequence;
// kSummary exactly once, terminal, and its object count must equal the
// finals records delivered. Any violation — framing, CRC, body size,
// or semantics — throws a positioned std::runtime_error and kills the
// assembler, exactly the FrameAssembler discipline. This is the fourth
// fuzzed decoder (replay/fuzz.hpp target "cluster").
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "codec/block.hpp"
#include "engine/engine.hpp"
#include "obs/metrics.hpp"

namespace repl {

inline constexpr std::uint64_t kControlMagic =
    0x4c5443434c504552ULL;  // "REPLCCTL"
inline constexpr std::uint32_t kControlVersion = 1;
inline constexpr std::size_t kControlHeaderBytes = 16;

/// Cap on one control frame's body. Finals frames chunk at
/// kControlFinalsChunk records, far below this; a corrupt length field
/// must fail, not allocate.
inline constexpr std::size_t kMaxControlBodyBytes = std::size_t{1} << 21;

/// Finals records per kFinals frame on the encode side.
inline constexpr std::size_t kControlFinalsChunk = 4096;

/// Bytes of one encoded finals record.
inline constexpr std::size_t kControlFinalsRecordBytes = 48;

enum class ControlType : std::uint32_t {
  kHello = 1,
  kProgress = 2,
  kCheckpoint = 3,
  kFinals = 4,
  kSummary = 5,
  kMetrics = 6,
};

/// "hello" / "progress" / ... for diagnostics.
const char* control_type_name(ControlType type);

struct ControlHello {
  std::uint32_t partition_id = 0;
  std::uint32_t num_partitions = 1;
  std::uint32_t pf_version = 0;
  std::uint32_t num_servers = 0;
  std::uint64_t resume_events = 0;
  std::uint64_t base_seed = 0;
};

struct ControlProgress {
  std::uint64_t events_ingested = 0;
  std::uint64_t batches = 0;
};

struct ControlCheckpoint {
  std::uint64_t events_ingested = 0;
};

struct ControlSummary {
  std::uint64_t objects = 0;
  std::uint64_t events = 0;
  std::uint64_t num_local = 0;
  std::uint64_t num_transfers = 0;
  double online_cost = 0.0;
  double lower_bound = 0.0;
};

struct ControlMetrics {
  std::uint64_t trace_id = 0;  ///< active trace, 0 when tracing is off
  std::uint64_t span_id = 0;   ///< worker span the snapshot was taken under
  std::vector<obs::Sample> samples;
};

/// One decoded control message; `type` selects the live member.
struct ControlMessage {
  ControlType type = ControlType::kHello;
  ControlHello hello;
  ControlProgress progress;
  ControlCheckpoint checkpoint;
  std::vector<EngineObjectFinal> finals;
  ControlSummary summary;
  ControlMetrics metrics;
};

/// Encoders append the stream header / one framed message to `out`.
/// A worker's control stream is: header, hello, then messages.
void encode_control_header(std::vector<unsigned char>& out);
void encode_control_hello(const ControlHello& hello,
                          std::vector<unsigned char>& out);
void encode_control_progress(const ControlProgress& progress,
                             std::vector<unsigned char>& out);
void encode_control_checkpoint(const ControlCheckpoint& checkpoint,
                               std::vector<unsigned char>& out);
/// Requires 1 <= count <= kControlFinalsChunk per call; ids must be
/// strictly increasing (across calls too — the decoder enforces it).
void encode_control_finals(const EngineObjectFinal* finals, std::size_t count,
                           std::vector<unsigned char>& out);
void encode_control_summary(const ControlSummary& summary,
                            std::vector<unsigned char>& out);
/// Requires samples.size() <= obs::kMaxEncodedSamples and every sample
/// within the sample codec's caps (obs/federation.hpp).
void encode_control_metrics(const ControlMetrics& metrics,
                            std::vector<unsigned char>& out);

/// Incremental decoder for one worker's control stream, fed the raw
/// socket bytes in whatever chunks arrive. Complete valid messages are
/// appended to `out`; any defect throws a positioned std::runtime_error
/// naming the stream, the frame index, and the byte offset, after which
/// the assembler is dead (mirrors net/wire.hpp's FrameAssembler).
class ClusterControlAssembler {
 public:
  explicit ClusterControlAssembler(std::string name,
                                   std::size_t max_body_bytes =
                                       kMaxControlBodyBytes);

  void feed(const unsigned char* data, std::size_t size,
            std::vector<ControlMessage>& out);

  /// True between messages (header consumed, no partial frame pending) —
  /// where a clean connection close is permitted mid-stream.
  bool at_boundary() const {
    return state_ == State::kFrame && pending_ == 0;
  }
  /// True once the terminal kSummary arrived: the stream is whole.
  bool complete() const { return summary_seen_; }

  bool header_done() const { return state_ != State::kHeader; }
  const ControlHello& hello() const { return hello_; }
  bool hello_seen() const { return hello_seen_; }

  std::uint64_t bytes_consumed() const { return offset_; }
  std::uint64_t frames_completed() const { return frames_; }
  std::uint64_t messages_decoded() const { return frames_; }
  std::uint64_t finals_records() const { return finals_records_; }

 private:
  enum class State { kHeader, kFrame, kBody };

  [[noreturn]] void fail(const std::string& what);
  void finish_header();
  void finish_frame();
  void finish_body(std::vector<ControlMessage>& out);
  void decode_message(ControlType type, std::uint32_t count,
                      std::vector<ControlMessage>& out);

  std::string name_;
  std::size_t max_body_bytes_;
  State state_ = State::kHeader;
  std::vector<unsigned char> buffer_;
  std::size_t pending_ = 0;
  std::size_t target_ = kControlHeaderBytes;
  BlockFrameHeader frame_;
  std::uint64_t offset_ = 0;
  std::uint64_t frames_ = 0;
  bool dead_ = false;

  // Protocol state.
  bool hello_seen_ = false;
  bool finals_seen_ = false;
  bool summary_seen_ = false;
  ControlHello hello_;
  std::uint64_t progress_events_ = 0;
  std::uint64_t progress_batches_ = 0;
  std::uint64_t checkpoint_events_ = 0;
  std::uint64_t finals_records_ = 0;
  std::uint64_t last_final_id_ = 0;
};

}  // namespace repl
