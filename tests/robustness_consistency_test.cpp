// Property tests of the paper's theorems:
//  * robustness: cost(DRWP) / OPT <= 1 + 1/alpha for ANY predictions;
//  * consistency: cost(DRWP) / OPT <= (5+alpha)/3 under perfect
//    predictions;
//  * alpha = 1 (conventional): ratio <= 2;
//  * the Figure-5 / Figure-6 instances drive the ratios toward the
//    tight bounds;
//  * the misprediction penalty bound of Section 8.
#include <gtest/gtest.h>

#include "analysis/allocation.hpp"
#include "analysis/misprediction.hpp"
#include "analysis/ratio.hpp"
#include "core/drwp.hpp"
#include "core/simulator.hpp"
#include "offline/opt_dp.hpp"
#include "predictor/fixed.hpp"
#include "predictor/noisy.hpp"
#include "predictor/oracle.hpp"
#include "test_util.hpp"
#include "trace/paper_instances.hpp"

namespace repl {
namespace {

using testing::make_config;

struct BoundCase {
  double alpha;
  double lambda;
  std::uint64_t seed;
};

class RobustnessBound : public ::testing::TestWithParam<BoundCase> {};

TEST_P(RobustnessBound, HoldsForArbitraryPredictions) {
  const BoundCase param = GetParam();
  const Trace trace = testing::random_trace(5, 0.05, 4000.0, param.seed);
  ASSERT_FALSE(trace.empty());
  const SystemConfig config = make_config(5, param.lambda);
  const double opt = optimal_offline_cost(config, trace);
  const double bound = robustness_bound(param.alpha);

  // Worst predictions we can construct: always-wrong, plus both constant
  // streams and a noisy one.
  AdversarialPredictor adversarial(trace);
  FixedPredictor beyond = always_beyond_predictor();
  FixedPredictor within = always_within_predictor();
  AccuracyPredictor noisy(trace, 0.3, param.seed * 13 + 7);
  for (Predictor* predictor :
       std::initializer_list<Predictor*>{&adversarial, &beyond, &within,
                                         &noisy}) {
    DrwpPolicy policy(param.alpha);
    const RatioReport report =
        evaluate_policy(config, policy, trace, *predictor, opt);
    EXPECT_LE(report.ratio, bound + 1e-9)
        << predictor->name() << " alpha=" << param.alpha
        << " lambda=" << param.lambda << " seed=" << param.seed;
  }
}

class ConsistencyBound : public ::testing::TestWithParam<BoundCase> {};

TEST_P(ConsistencyBound, HoldsForPerfectPredictions) {
  const BoundCase param = GetParam();
  const Trace trace = testing::random_trace(5, 0.05, 4000.0, param.seed);
  ASSERT_FALSE(trace.empty());
  const SystemConfig config = make_config(5, param.lambda);
  OraclePredictor oracle(trace);
  DrwpPolicy policy(param.alpha);
  const RatioReport report =
      evaluate_policy(config, policy, trace, oracle);
  EXPECT_LE(report.ratio, consistency_bound(param.alpha) + 1e-9)
      << "alpha=" << param.alpha << " lambda=" << param.lambda
      << " seed=" << param.seed;
}

std::vector<BoundCase> bound_cases() {
  std::vector<BoundCase> cases;
  std::uint64_t seed = 9000;
  for (double alpha : {0.1, 0.3, 0.5, 0.8, 1.0}) {
    for (double lambda : {3.0, 20.0, 120.0}) {
      for (int rep = 0; rep < 3; ++rep) {
        cases.push_back({alpha, lambda, seed++});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, RobustnessBound,
                         ::testing::ValuesIn(bound_cases()));
INSTANTIATE_TEST_SUITE_P(Sweep, ConsistencyBound,
                         ::testing::ValuesIn(bound_cases()));

TEST(ConventionalRatio, AtMostTwo) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const Trace trace = testing::random_trace(5, 0.04, 5000.0, seed + 400);
    if (trace.empty()) continue;
    for (double lambda : {5.0, 50.0}) {
      const SystemConfig config = make_config(5, lambda);
      ConventionalPolicy policy;
      FixedPredictor beyond = always_beyond_predictor();
      const RatioReport report =
          evaluate_policy(config, policy, trace, beyond);
      EXPECT_LE(report.ratio, 2.0 + 1e-9)
          << "seed=" << seed << " lambda=" << lambda;
    }
  }
}

TEST(TightExamples, Figure5RatioApproachesRobustnessBound) {
  // With always-"beyond" predictions on the Figure-5 instance, the ratio
  // approaches 1 + 1/alpha as m grows and eps shrinks.
  const double lambda = 100.0;
  for (double alpha : {0.25, 0.5, 1.0}) {
    const double eps = alpha * lambda * 1e-3;
    const int m = 400;
    const SystemConfig config = make_config(2, lambda);
    const Trace trace = make_figure5_trace(alpha, lambda, m, eps);
    DrwpPolicy policy(alpha);
    FixedPredictor beyond = always_beyond_predictor();
    const RatioReport report =
        evaluate_policy(config, policy, trace, beyond);
    const double bound = robustness_bound(alpha);
    EXPECT_LE(report.ratio, bound + 1e-9) << "alpha=" << alpha;
    EXPECT_GT(report.ratio, bound * 0.98) << "alpha=" << alpha;
  }
}

TEST(TightExamples, Figure6RatioApproachesConsistencyBound) {
  // Perfect ("beyond") predictions on the Figure-6 cycles: the ratio
  // approaches (5+alpha)/3 as eps -> 0.
  const double lambda = 100.0;
  for (double alpha : {0.25, 0.5, 1.0}) {
    const double eps = std::min(alpha * lambda, lambda) * 1e-3;
    const SystemConfig config = make_config(2, lambda);
    const Trace trace = make_figure6_trace(lambda, eps, 12);
    DrwpPolicy policy(alpha);
    FixedPredictor beyond = always_beyond_predictor();
    const RatioReport report =
        evaluate_policy(config, policy, trace, beyond);
    const double bound = consistency_bound(alpha);
    EXPECT_LE(report.ratio, bound + 1e-9) << "alpha=" << alpha;
    EXPECT_GT(report.ratio, bound * 0.97) << "alpha=" << alpha;
  }
}

TEST(TightExamples, SmallAlphaBeatsConventionalOnFigure6) {
  // The benefit of trusting correct predictions: on the consistency
  // instance, alpha -> 0 yields a strictly better ratio than alpha = 1.
  const double lambda = 50.0, eps = 0.05;
  const SystemConfig config = make_config(2, lambda);
  const Trace trace = make_figure6_trace(lambda, eps, 10);
  FixedPredictor beyond = always_beyond_predictor();
  DrwpPolicy trusting(0.05);
  DrwpPolicy distrusting(1.0);
  const double ratio_trusting =
      evaluate_policy(config, trusting, trace, beyond).ratio;
  const double ratio_distrusting =
      evaluate_policy(config, distrusting, trace, beyond).ratio;
  EXPECT_LT(ratio_trusting, ratio_distrusting);
}

TEST(Mispredictions, ClassifiesRegimes) {
  // lambda=10, alpha=0.5. Craft gaps in all three regimes at one server
  // and flip specific predictions with the adversarial predictor.
  const double lambda = 10.0, alpha = 0.5;
  const SystemConfig config = make_config(1, lambda);
  // Gaps from dummy: 3 (<= αλ), then 8 (in (αλ, λ]), then 25 (> λ).
  const Trace trace(1, {{3.0, 0}, {11.0, 0}, {36.0, 0}});
  AdversarialPredictor wrong(trace);
  const SimulationResult result =
      testing::run_drwp(config, trace, alpha, wrong);
  const MispredictionReport report =
      analyze_mispredictions(result, trace, alpha);
  EXPECT_EQ(report.m1, 1u);
  EXPECT_EQ(report.m2, 1u);
  EXPECT_EQ(report.m3, 1u);
  EXPECT_EQ(report.correct, 0u);
  EXPECT_DOUBLE_EQ(report.penalty_bound,
                   lambda + (2.0 - alpha) * lambda);
}

TEST(Mispredictions, OracleRunHasNone) {
  const Trace trace = testing::random_trace(4, 0.05, 3000.0, 91);
  const SystemConfig config = make_config(4, 15.0);
  OraclePredictor oracle(trace);
  const SimulationResult result =
      testing::run_drwp(config, trace, 0.5, oracle);
  const MispredictionReport report =
      analyze_mispredictions(result, trace, 0.5);
  EXPECT_EQ(report.mispredicted(), 0u);
  EXPECT_EQ(report.correct + report.uncovered, trace.size());
}

TEST(Mispredictions, PenaltyBoundCoversObservedIncrease) {
  // Section 8: the total online cost increase caused by mispredictions is
  // at most λ|M2| + (2-α)λ|M3|. Compare allocated totals of noisy vs
  // oracle runs on identical traces.
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const Trace trace = testing::random_trace(5, 0.05, 4000.0, seed + 700);
    if (trace.empty()) continue;
    const double alpha = 0.4, lambda = 25.0;
    const SystemConfig config = make_config(5, lambda);
    OraclePredictor oracle(trace);
    AccuracyPredictor noisy(trace, 0.5, seed + 1);
    const SimulationResult perfect =
        testing::run_drwp(config, trace, alpha, oracle);
    const SimulationResult degraded =
        testing::run_drwp(config, trace, alpha, noisy);
    const MispredictionReport report =
        analyze_mispredictions(degraded, trace, alpha);
    const double increase = allocate_costs(degraded, trace).total_allocated -
                            allocate_costs(perfect, trace).total_allocated;
    EXPECT_LE(increase, report.penalty_bound + 1e-6) << "seed=" << seed;
  }
}

TEST(Mispredictions, M1IsFree) {
  // Flipping predictions for gaps <= alpha*lambda does not change cost:
  // both branches keep the copy long enough.
  const double lambda = 10.0, alpha = 0.5;
  const SystemConfig config = make_config(1, lambda);
  const Trace trace(1, {{2.0, 0}, {4.0, 0}, {6.0, 0}});  // gaps 2 <= αλ=5
  OraclePredictor oracle(trace);
  AdversarialPredictor wrong(trace);
  const double with_oracle =
      testing::run_drwp(config, trace, alpha, oracle).total_cost();
  const double with_wrong =
      testing::run_drwp(config, trace, alpha, wrong).total_cost();
  EXPECT_DOUBLE_EQ(with_oracle, with_wrong);
}

TEST(RatioReport, FieldsPopulated) {
  const Trace trace = testing::random_trace(4, 0.05, 2000.0, 311);
  const SystemConfig config = make_config(4, 10.0);
  DrwpPolicy policy(0.5);
  OraclePredictor oracle(trace);
  const RatioReport report = evaluate_policy(config, policy, trace, oracle);
  EXPECT_GT(report.online_cost, 0.0);
  EXPECT_GT(report.opt_cost, 0.0);
  EXPECT_GE(report.ratio, 1.0 - 1e-9);
  EXPECT_GE(report.opt_cost, report.opt_lower - 1e-9);
  EXPECT_EQ(report.num_local + report.num_transfers, trace.size());
  EXPECT_EQ(report.policy_name, "drwp(alpha=0.5)");
}

}  // namespace
}  // namespace repl
