// Streaming engine demo: synthesize an interleaved multi-object workload
// straight to a binary event log on disk, then serve it online through
// the sharded engine and print the aggregate cost/ratio metrics — the
// end-to-end "production" path (no per-object traces anywhere).
//
//   ./build/examples/engine_serve
//   ./build/examples/engine_serve --objects=100000 --arrivals=diurnal
//   ./build/examples/engine_serve --log=my.evlog   # serve an existing log
//
// Crash-safe serving: --checkpoint-every=N snapshots the full engine
// state (atomically, via rename) every N events; --resume-from=path
// restores a snapshot and continues the same log mid-stream with
// bit-identical final aggregates; --stop-after=N simulates a crash by
// abandoning the serve (checkpoint written, no metrics) after ~N events.
//
//   ./build/examples/engine_serve --keep-log --checkpoint-path=my.ckpt
//       --checkpoint-every=200000 --stop-after=400000
//   ./build/examples/engine_serve --log=/tmp/engine_serve_demo.evlog
//       --resume-from=my.ckpt
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "api/experiment.hpp"
#include "api/registry.hpp"
#include "checkpoint/snapshot.hpp"
#include "engine/engine.hpp"
#include "obs/http_exporter.hpp"
#include "obs/metrics.hpp"
#include "trace/event_log.hpp"
#include "trace/stream_gen.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace repl;

namespace {

/// Prints one runnable canonical spec per line for every engine-safe
/// (causal) component of `kind` — the machine-readable list CI loops
/// over.
void list_components(ComponentKind kind) {
  ComponentRegistry& registry = ComponentRegistry::instance();
  for (const ComponentInfo* info : registry.components(kind)) {
    if (info->requires_trace) continue;  // online serving has no trace
    std::cout << registry.canonical_string(kind, info->example) << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("engine_serve",
                "serve an interleaved multi-object event log online");
  cli.add_flag("log", "", "existing event log to serve (empty: generate)");
  cli.add_flag("objects", "50000", "objects to synthesize");
  cli.add_flag("events", "1000000", "events to synthesize");
  cli.add_flag("servers", "10", "servers in the system");
  cli.add_flag("arrivals", "poisson", "arrival process: poisson|pareto|diurnal");
  cli.add_flag("shards", "64", "object-table shards");
  cli.add_flag("threads", "0", "worker threads (0 = all hardware threads)");
  cli.add_flag("lambda", "10", "transfer cost λ");
  cli.add_flag("alpha", "0.3", "DRWP α (used when --policy is not given)");
  cli.add_flag("policy", "",
               "policy component spec, e.g. \"adaptive(alpha=0.3)\" "
               "(default: drwp(alpha=<alpha>); on --resume-from, default "
               "is the snapshot's recorded spec)");
  cli.add_flag("predictor", "",
               "predictor component spec, e.g. "
               "\"ensemble(last_gap,history(ewma=0.3))\" (default: "
               "last_gap; on --resume-from, the snapshot's spec)");
  cli.add_bool_flag("list-policies",
                    "print every engine-safe policy spec and exit");
  cli.add_bool_flag("list-predictors",
                    "print every engine-safe predictor spec and exit");
  cli.add_flag("seed", "1", "workload seed");
  cli.add_flag("log-format", "raw",
               "wire format of the generated log: raw|compressed (an "
               "existing --log is read in whatever format it is)");
  cli.add_bool_flag("compress",
                    "write snapshots with compressed object records "
                    "(format v3, word codec)");
  cli.add_bool_flag("sync-ingest",
                    "disable double-buffered ingestion (decode batches "
                    "on the serving thread, the pre-codec behaviour)");
  cli.add_bool_flag("keep-log", "keep the generated log on disk");
  cli.add_flag("checkpoint-every", "0",
               "snapshot the engine every N events (0 = never)");
  cli.add_flag("checkpoint-path", "",
               "snapshot destination (default: <log>.ckpt)");
  cli.add_flag("resume-from", "", "restore this snapshot and resume the log");
  cli.add_flag("stop-after", "0",
               "abandon the serve after ~N events (with a final snapshot); "
               "simulates a crash for resume testing");
  cli.add_flag("stats-every", "0",
               "print a one-line serve report every N seconds (0 = off)");
  cli.add_flag("metrics-port", "-1",
               "serve GET /metrics (Prometheus text / JSON) and /healthz "
               "on 127.0.0.1:PORT; 0 binds an ephemeral port (-1 = off)");
  if (!cli.parse(argc, argv)) return 0;

  if (cli.get_bool("list-policies")) {
    list_components(ComponentKind::kPolicy);
    return EXIT_SUCCESS;
  }
  if (cli.get_bool("list-predictors")) {
    list_components(ComponentKind::kPredictor);
    return EXIT_SUCCESS;
  }

  const std::size_t objects = cli.get_size_t("objects", 1, 100000000);
  const std::size_t shards = cli.get_size_t("shards", 1, 1 << 20);
  const std::size_t events = cli.get_size_t("events", 1);
  int servers = static_cast<int>(cli.get_size_t("servers", 1, 4096));

  std::string log_path = cli.get_string("log");
  bool generated = false;
  if (log_path.empty()) {
    StreamWorkloadConfig workload;
    workload.num_objects = objects;
    workload.num_servers = servers;
    workload.max_events = events;
    workload.rate = static_cast<double>(objects) / 64.0;
    const std::string arrivals = cli.get_string("arrivals");
    if (arrivals == "pareto") {
      workload.arrivals = StreamWorkloadConfig::Arrivals::kPareto;
    } else if (arrivals == "diurnal") {
      workload.arrivals = StreamWorkloadConfig::Arrivals::kDiurnal;
    } else if (arrivals != "poisson") {
      std::cerr << "error: unknown --arrivals " << arrivals << "\n";
      return EXIT_FAILURE;
    }
    log_path = (std::filesystem::temp_directory_path() /
                "engine_serve_demo.evlog")
                   .string();
    EventLogFormat format = EventLogFormat::kRaw;
    try {
      format = parse_event_log_format(cli.get_string("log-format"));
    } catch (const std::exception& e) {
      std::cerr << "error: " << e.what() << "\n";
      return EXIT_FAILURE;
    }
    std::cout << "synthesizing " << events << " " << arrivals
              << " events over " << objects << " objects -> " << log_path
              << " (" << event_log_format_name(format) << ")\n";
    generate_event_log(workload, cli.get_uint64("seed"), log_path, format);
    generated = true;
  }

  EventLogReader reader(log_path);
  // An existing log knows its own server count; --servers only shapes
  // generated workloads.
  if (!generated) servers = reader.num_servers();

  SystemConfig config;
  config.num_servers = servers;
  config.transfer_cost = cli.get_double("lambda");

  EngineOptions options;
  options.num_shards = shards;
  options.num_threads = static_cast<int>(cli.get_size_t("threads", 0, 4096));
  options.compress_checkpoints = cli.get_bool("compress");

  // Telemetry: one registry feeds the optional HTTP endpoint and gives
  // the stats reporter real histograms. Declared here so it outlives the
  // engine built below.
  obs::MetricsRegistry registry;
  std::unique_ptr<obs::MetricsHttpServer> metrics_http;
  if (cli.get_int("metrics-port") >= 0) {
    options.metrics = &registry;
    obs::MetricsHttpOptions http;
    http.port = static_cast<int>(cli.get_int("metrics-port"));
    metrics_http = std::make_unique<obs::MetricsHttpServer>(registry, http);
    metrics_http->start();
    std::cout << "metrics: http://127.0.0.1:" << metrics_http->port()
              << "/metrics\n";
  }

  std::cout << "serving " << log_path << " ("
            << (reader.header().num_events == EventLogHeader::kUnknownCount
                    ? std::string("?")
                    : std::to_string(reader.header().num_events))
            << " events, " << reader.header().num_objects << " objects, "
            << reader.num_servers() << " servers)\n";

  const std::uint64_t checkpoint_every = cli.get_uint64("checkpoint-every");
  const std::uint64_t stop_after = cli.get_uint64("stop-after");
  const std::string resume_from = cli.get_string("resume-from");
  std::string checkpoint_path = cli.get_string("checkpoint-path");
  if (checkpoint_path.empty()) checkpoint_path = log_path + ".ckpt";

  // Components come from the registry via EngineBuilder: any registered
  // causal policy×predictor combination is one CLI flag away, a bad
  // spec fails here with a positioned diagnostic, and the canonical
  // specs ride into every checkpoint the serve writes.
  EngineBuilder builder;
  builder.config(config).options(options);
  try {
    if (!cli.get_string("policy").empty()) {
      builder.policy(cli.get_string("policy"));
    } else if (resume_from.empty()) {
      builder.policy("drwp(alpha=" + cli.get_string("alpha") + ")");
    }
    if (!cli.get_string("predictor").empty()) {
      builder.predictor(cli.get_string("predictor"));
    } else if (resume_from.empty()) {
      builder.predictor("last_gap");
    }
  } catch (const SpecError& e) {
    std::cerr << "error: " << e.what() << "\n";
    return EXIT_FAILURE;
  }

  std::unique_ptr<StreamingEngine> engine;
  try {
    if (!resume_from.empty()) {
      // Specs left unset self-construct from the snapshot's recorded
      // ones; explicit specs are cross-checked against them.
      engine = builder.restore(resume_from);
      std::cout << "resumed " << resume_from << ": "
                << engine->object_count() << " objects at event offset "
                << engine->resume_position() << "\n";
    } else {
      engine = builder.build();
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return EXIT_FAILURE;
  }
  std::cout << "policy: " << engine->options().policy_spec
            << "\npredictor: " << engine->options().predictor_spec << "\n";

  if (stop_after > 0) {
    // Crash simulation: drain part of the log — honoring the periodic
    // --checkpoint-every cadence, like a real serve would — then write a
    // final snapshot and abandon the serve without finishing. The log is
    // kept so a later --resume-from can pick up where this run stopped.
    // Manual ingest path: bind the log identity (recorded in the
    // snapshots) and do the hash-verified resume seek ourselves, the
    // way serve() would.
    try {
      engine->bind_log(reader.header());
      engine->seek_to_resume(reader);
    } catch (const std::exception& e) {
      std::cerr << "error: " << e.what() << "\n";
      return EXIT_FAILURE;
    }
    std::vector<LogEvent> batch;
    std::uint64_t next_mark =
        checkpoint_every == 0
            ? 0
            : (engine->stats().events_ingested / checkpoint_every + 1) *
                  checkpoint_every;
    while (engine->stats().events_ingested < stop_after &&
           reader.read_batch(batch, std::size_t{1} << 16) > 0) {
      engine->ingest(batch);
      if (checkpoint_every > 0 &&
          engine->stats().events_ingested >= next_mark) {
        const std::string tmp = checkpoint_path + ".tmp";
        engine->checkpoint(tmp);
        std::filesystem::rename(tmp, checkpoint_path);
        while (next_mark <= engine->stats().events_ingested) {
          next_mark += checkpoint_every;
        }
      }
    }
    // The final snapshot replaces the last periodic one atomically too:
    // a crash mid-write (the very scenario this flag simulates) must
    // never clobber a good checkpoint with a truncated file.
    {
      const std::string tmp = checkpoint_path + ".tmp";
      engine->checkpoint(tmp);
      std::filesystem::rename(tmp, checkpoint_path);
      sync_path_best_effort(std::filesystem::path(checkpoint_path)
                                .parent_path()
                                .string());
    }
    std::cout << "stopped after " << engine->stats().events_ingested
              << " events; snapshot -> " << checkpoint_path
              << "\nresume with: --log=" << log_path
              << " --resume-from=" << checkpoint_path << "\n";
    return EXIT_SUCCESS;
  }

  ServeOptions serve_options;
  serve_options.checkpoint_every = checkpoint_every;
  if (checkpoint_every > 0) serve_options.checkpoint_path = checkpoint_path;
  serve_options.async_ingest = !cli.get_bool("sync-ingest");
  serve_options.stats_every = cli.get_double("stats-every");
  EngineMetrics metrics;
  try {
    metrics = engine->serve(reader, serve_options);
  } catch (const std::exception& e) {
    // Typically the snapshot↔log cross-check: resuming against a log
    // that is not the one the checkpoint was taken from.
    std::cerr << "error: " << e.what() << "\n";
    return EXIT_FAILURE;
  }
  const EngineStats& stats = engine->stats();
  const double wall = stats.ingest_seconds + stats.finish_seconds;

  Table table({"metric", "value"});
  table.add_row({"objects served", Table::cell(metrics.objects)});
  table.add_row({"events served", Table::cell(metrics.events)});
  table.add_row({"local serves", Table::cell(metrics.num_local)});
  table.add_row({"transfers", Table::cell(metrics.num_transfers)});
  table.add_row({"online cost", Table::cell(metrics.online_cost, 1)});
  table.add_row({"OPTL lower bound", Table::cell(metrics.lower_bound, 1)});
  table.add_row({"cost / OPTL", Table::cell(metrics.ratio(), 4)});
  table.add_row({"threads used", Table::cell(stats.threads_used)});
  table.add_row({"batches", Table::cell(stats.batches)});
  table.add_row({"steals", Table::cell(stats.steals)});
  if (stats.checkpoints_written > 0) {
    table.add_row({"checkpoints", Table::cell(stats.checkpoints_written)});
    table.add_row(
        {"checkpoint seconds", Table::cell(stats.checkpoint_seconds, 3)});
  }
  table.add_row({"wall seconds", Table::cell(wall, 3)});
  table.add_row(
      {"events/sec",
       Table::cell(wall > 0.0 ? static_cast<double>(metrics.events) / wall
                              : 0.0,
                   0)});
  std::cout << table.str();

  // Shard balance summary: the busiest and emptiest shards.
  const EngineShardMetrics* busiest = nullptr;
  const EngineShardMetrics* lightest = nullptr;
  for (const EngineShardMetrics& shard : metrics.shards) {
    if (busiest == nullptr || shard.events > busiest->events) {
      busiest = &shard;
    }
    if (lightest == nullptr || shard.events < lightest->events) {
      lightest = &shard;
    }
  }
  if (busiest != nullptr && lightest != nullptr) {
    std::cout << "\nshard balance: busiest " << busiest->events
              << " events / " << busiest->objects << " objects, lightest "
              << lightest->events << " events / " << lightest->objects
              << " objects across " << metrics.shards.size() << " shards\n";
  }

  if (generated && !cli.get_bool("keep-log")) {
    std::error_code ec;
    std::filesystem::remove(log_path, ec);
  }
  return EXIT_SUCCESS;
}
