// Fixed-bin and logarithmic histograms for inter-request time analysis.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace repl {

/// Estimated q-quantile (q in [0,1]) of a bucketed distribution given the
/// finite upper bounds and *cumulative* counts (one extra trailing entry
/// for the implicit +Inf bucket, i.e. cumulative.size() == bounds.size()+1,
/// cumulative.back() == total count). Linear interpolation inside the
/// selected bucket; +Inf hits clamp to the last finite bound; 0 when
/// empty. Shared by util histograms and the obs metrics layer.
double histogram_quantile(const std::vector<double>& bounds,
                          const std::vector<std::uint64_t>& cumulative,
                          double q);

/// Linear-bin histogram over [lo, hi); out-of-range samples go to
/// underflow/overflow counters.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);

  std::size_t bin_count() const { return counts_.size(); }
  std::size_t count(std::size_t bin) const { return counts_.at(bin); }
  std::size_t underflow() const { return underflow_; }
  std::size_t overflow() const { return overflow_; }
  std::size_t total() const { return total_; }
  double bin_lo(std::size_t bin) const;
  double bin_hi(std::size_t bin) const;

  /// Renders a compact ASCII bar chart (one line per bin).
  std::string ascii(std::size_t width = 50) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
  std::size_t total_ = 0;
};

/// Log10-bin histogram over [lo, hi); useful for inter-request times that
/// span several orders of magnitude (the IBM-like traces do).
class LogHistogram {
 public:
  LogHistogram(double lo, double hi, std::size_t bins_per_decade = 4);

  void add(double x);

  std::size_t bin_count() const { return counts_.size(); }
  std::size_t count(std::size_t bin) const { return counts_.at(bin); }
  std::size_t underflow() const { return underflow_; }
  std::size_t overflow() const { return overflow_; }
  std::size_t total() const { return total_; }
  double bin_lo(std::size_t bin) const;
  double bin_hi(std::size_t bin) const;

  std::string ascii(std::size_t width = 50) const;

 private:
  double log_lo_;
  double step_;
  std::vector<std::size_t> counts_;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
  std::size_t total_ = 0;
};

}  // namespace repl
