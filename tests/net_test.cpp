// Net-layer tests: the wire protocol (FrameAssembler against every
// corruption and chunking), and socket-level integration — concurrent
// interleaved clients whose merged serve is bit-identical to file
// replay, mid-frame disconnects surviving as the validated prefix,
// backpressure under tiny queues, live checkpoint/resume, and the
// metrics endpoint.
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "codec/block.hpp"
#include "codec/crc32.hpp"
#include "codec/endian.hpp"
#include "core/drwp.hpp"
#include "engine/engine.hpp"
#include "net/client.hpp"
#include "net/ingest_server.hpp"
#include "net/socket.hpp"
#include "net/wire.hpp"
#include "obs/metrics.hpp"
#include "predictor/last_gap.hpp"
#include "trace/event_log.hpp"

namespace repl {
namespace {

constexpr double kAlpha = 0.3;
constexpr int kServers = 5;

SystemConfig net_config() {
  SystemConfig config;
  config.num_servers = kServers;
  config.transfer_cost = 10.0;
  return config;
}

EnginePolicyFactory drwp_factory() {
  return [](const EngineObjectContext&) -> PolicyPtr {
    return std::make_unique<DrwpPolicy>(kAlpha);
  };
}

EnginePredictorFactory last_gap_factory() {
  return [](const EngineObjectContext&) -> PredictorPtr {
    return std::make_unique<LastGapPredictor>(kServers);
  };
}

std::unique_ptr<StreamingEngine> make_engine() {
  return std::make_unique<StreamingEngine>(net_config(), EngineOptions{},
                                           drwp_factory(),
                                           last_gap_factory());
}

/// A deterministic interleaved stream: `count` events over `objects`
/// objects with strictly increasing times.
std::vector<LogEvent> make_events(std::size_t count, std::uint64_t objects) {
  std::vector<LogEvent> events;
  events.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    events.push_back(LogEvent{0.25 * static_cast<double>(i + 1),
                              (i * 7919) % objects,
                              static_cast<std::uint32_t>((i * 31) % kServers)});
  }
  return events;
}

/// Reference aggregates: ingest `events` directly (no sockets).
EngineMetrics reference_metrics(const std::vector<LogEvent>& events) {
  auto engine = make_engine();
  EventLogHeader header;
  header.version = EventLogHeader::kVersionCompressed;
  header.num_servers = kServers;
  header.num_events = EventLogHeader::kUnknownCount;
  engine->bind_log(header);
  engine->ingest(events);
  return engine->finish();
}

void expect_same(const EngineMetrics& a, const EngineMetrics& b) {
  EXPECT_EQ(a.objects, b.objects);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.num_local, b.num_local);
  EXPECT_EQ(a.num_transfers, b.num_transfers);
  EXPECT_EQ(a.online_cost, b.online_cost);
  EXPECT_EQ(a.lower_bound, b.lower_bound);
}

/// Encodes one wire frame (header + payload) for raw-socket tests.
std::vector<unsigned char> encode_frame(const std::vector<LogEvent>& events) {
  std::vector<unsigned char> body;
  encode_event_block(events.data(), events.size(), body);
  std::vector<unsigned char> frame(kBlockFrameBytes + body.size());
  encode_block_frame(frame.data(), static_cast<std::uint32_t>(events.size()),
                     body.data(), body.size());
  std::copy(body.begin(), body.end(), frame.begin() + kBlockFrameBytes);
  return frame;
}

std::vector<unsigned char> encode_stream(const std::vector<LogEvent>& events,
                                         std::size_t block_events) {
  std::vector<unsigned char> stream(EventLogHeader::kSize);
  encode_stream_header(stream.data(), kServers);
  for (std::size_t i = 0; i < events.size(); i += block_events) {
    const std::size_t n = std::min(block_events, events.size() - i);
    const auto at = static_cast<std::ptrdiff_t>(i);
    const std::vector<LogEvent> block(
        events.begin() + at, events.begin() + at + static_cast<std::ptrdiff_t>(n));
    const std::vector<unsigned char> frame = encode_frame(block);
    stream.insert(stream.end(), frame.begin(), frame.end());
  }
  return stream;
}

// ---------------------------------------------------------------------
// FrameAssembler

TEST(FrameAssemblerTest, RoundTripsWholeStreamAndByteAtATime) {
  const std::vector<LogEvent> events = make_events(1000, 37);
  const std::vector<unsigned char> stream = encode_stream(events, 128);

  FrameAssembler whole("whole");
  std::vector<LogEvent> out;
  whole.feed(stream.data(), stream.size(), out);
  EXPECT_EQ(out, events);
  EXPECT_TRUE(whole.at_boundary());
  EXPECT_EQ(whole.events_decoded(), events.size());
  EXPECT_EQ(whole.frames_completed(), (events.size() + 127) / 128);
  EXPECT_EQ(whole.header().num_servers,
            static_cast<std::uint32_t>(kServers));

  // The chunking must be invisible: one byte at a time decodes the same
  // events, and at_boundary() is false everywhere except between frames.
  FrameAssembler trickle("trickle");
  std::vector<LogEvent> dribble;
  for (std::size_t i = 0; i < stream.size(); ++i) {
    trickle.feed(stream.data() + i, 1, dribble);
  }
  EXPECT_EQ(dribble, events);
  EXPECT_TRUE(trickle.at_boundary());
}

TEST(FrameAssemblerTest, MidFrameIsNotABoundary) {
  const std::vector<LogEvent> events = make_events(10, 3);
  const std::vector<unsigned char> stream = encode_stream(events, 16);
  FrameAssembler assembler("partial");
  std::vector<LogEvent> out;
  // Header + frame header + half the payload: mid-frame.
  const std::size_t cut = EventLogHeader::kSize + kBlockFrameBytes + 5;
  assembler.feed(stream.data(), cut, out);
  EXPECT_FALSE(assembler.at_boundary());
  EXPECT_TRUE(out.empty());
  // The rest completes the frame.
  assembler.feed(stream.data() + cut, stream.size() - cut, out);
  EXPECT_EQ(out, events);
  EXPECT_TRUE(assembler.at_boundary());
}

TEST(FrameAssemblerTest, FrameHeaderCorruptionIsPositionedAndSticky) {
  const std::vector<LogEvent> events = make_events(64, 5);
  std::vector<unsigned char> stream = encode_stream(events, 32);
  stream[EventLogHeader::kSize + 3] ^= 0x40;  // inside the first frame header

  FrameAssembler assembler("peer");
  std::vector<LogEvent> out;
  try {
    assembler.feed(stream.data(), stream.size(), out);
    FAIL() << "corrupt frame header must throw";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("frame CRC mismatch"), std::string::npos) << what;
    EXPECT_NE(what.find("peer"), std::string::npos) << what;
    EXPECT_NE(what.find("frame 0"), std::string::npos) << what;
  }
  EXPECT_TRUE(out.empty());
  // Dead after a failure: even clean bytes are refused.
  EXPECT_THROW(assembler.feed(stream.data(), 1, out), std::runtime_error);
}

TEST(FrameAssemblerTest, PayloadCorruptionFailsTheBodyCrc) {
  const std::vector<LogEvent> events = make_events(64, 5);
  std::vector<unsigned char> stream = encode_stream(events, 64);
  stream[EventLogHeader::kSize + kBlockFrameBytes + 7] ^= 0x01;

  FrameAssembler assembler("peer");
  std::vector<LogEvent> out;
  try {
    assembler.feed(stream.data(), stream.size(), out);
    FAIL() << "corrupt payload must throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("payload CRC mismatch"),
              std::string::npos)
        << e.what();
  }
}

TEST(FrameAssemblerTest, ImplausibleLengthRejectedBeforeAllocation) {
  // A frame header advertising a body beyond the cap, with a valid frame
  // CRC (so only the length check can reject it).
  std::vector<unsigned char> stream(EventLogHeader::kSize);
  encode_stream_header(stream.data(), kServers);
  unsigned char frame[kBlockFrameBytes];
  const unsigned char none = 0;
  encode_block_frame(frame, 1, &none, 0);
  store_le32(frame, 1 << 20);                    // huge body_len...
  store_le32(frame + 12, crc32c(frame, 12));     // ...with a valid CRC
  stream.insert(stream.end(), frame, frame + kBlockFrameBytes);

  FrameAssembler assembler("peer", /*max_body_bytes=*/4096);
  std::vector<LogEvent> out;
  try {
    assembler.feed(stream.data(), stream.size(), out);
    FAIL() << "implausible length must throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("implausible frame length"),
              std::string::npos)
        << e.what();
  }
}

TEST(FrameAssemblerTest, RejectsBadMagicWrongVersionAndZeroServers) {
  std::vector<LogEvent> out;
  {
    unsigned char header[EventLogHeader::kSize];
    encode_stream_header(header, kServers);
    header[0] ^= 0xFF;
    FrameAssembler assembler("peer");
    EXPECT_THROW(assembler.feed(header, sizeof(header), out),
                 std::runtime_error);
  }
  {
    unsigned char header[EventLogHeader::kSize];
    encode_stream_header(header, kServers);
    store_le32(header + 8, 1);  // raw format cannot be streamed
    FrameAssembler assembler("peer");
    EXPECT_THROW(assembler.feed(header, sizeof(header), out),
                 std::runtime_error);
  }
  {
    unsigned char header[EventLogHeader::kSize];
    encode_stream_header(header, 0);
    FrameAssembler assembler("peer");
    EXPECT_THROW(assembler.feed(header, sizeof(header), out),
                 std::runtime_error);
  }
}

TEST(FrameAssemblerTest, RejectsNonPositiveAndRegressingTimes) {
  {
    std::vector<LogEvent> events = make_events(4, 2);
    events[2].time = 0.0;
    const std::vector<unsigned char> stream = encode_stream(events, 8);
    FrameAssembler assembler("peer");
    std::vector<LogEvent> out;
    EXPECT_THROW(assembler.feed(stream.data(), stream.size(), out),
                 std::runtime_error);
  }
  {
    // Regression across a frame boundary: frame 2 rewinds the stream.
    std::vector<LogEvent> events = make_events(8, 2);
    events[6].time = events[1].time;
    events[7].time = events[1].time;
    const std::vector<unsigned char> stream = encode_stream(events, 6);
    FrameAssembler assembler("peer");
    std::vector<LogEvent> out;
    try {
      assembler.feed(stream.data(), stream.size(), out);
      FAIL() << "regressing time must throw";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("regresses"), std::string::npos)
          << e.what();
    }
    EXPECT_EQ(out.size(), 6u);  // the first frame was delivered
  }
}

TEST(NetWireTest, AckRoundTripsAndRejectsBadMagic) {
  unsigned char ack[kNetAckBytes];
  encode_net_ack(ack, 123456789ULL);
  EXPECT_EQ(decode_net_ack(ack), 123456789ULL);
  ack[1] ^= 0x10;
  EXPECT_THROW(decode_net_ack(ack), std::runtime_error);
}

// ---------------------------------------------------------------------
// Socket integration

class NetTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("repl_net_test_" + std::string(::testing::UnitTest::GetInstance()
                                               ->current_test_info()
                                               ->name()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  std::string temp_path(const std::string& name) {
    return (dir_ / name).string();
  }

  std::filesystem::path dir_;
};

/// Streams `events` through a connected client; swallows socket errors
/// (tests that kill connections expect the peer to see EPIPE).
void stream_events(Socket sock, const std::vector<LogEvent>& events,
                   EventStreamClientOptions options = {}) {
  try {
    EventStreamClient client(std::move(sock), options);
    client.handshake(kServers);
    for (const LogEvent& event : events) {
      if (!client.send(event)) return;
    }
    client.finish();
  } catch (const std::exception&) {
  }
}

TEST_F(NetTest, InterleavedClientsMatchFileReplayBitForBit) {
  // Three concurrent clients — one of them slow (tiny chunks with pauses)
  // — each streaming a round-robin share of one logical stream over TCP.
  // The merged serve must equal a direct ingest of the whole stream.
  const std::vector<LogEvent> all = make_events(6000, 41);
  const EngineMetrics reference = reference_metrics(all);

  NetServerOptions options;
  options.tcp_port = 0;
  options.min_connections = 3;
  options.batch_events = 256;
  NetIngestServer server(options);
  auto engine = make_engine();
  NetIngestSource source(server, kServers);
  source.attach(*engine);
  const int port = server.tcp_port();
  ASSERT_GT(port, 0);

  std::vector<std::thread> clients;
  for (int c = 0; c < 3; ++c) {
    std::vector<LogEvent> share;
    for (std::size_t i = static_cast<std::size_t>(c); i < all.size(); i += 3) {
      share.push_back(all[i]);
    }
    EventStreamClientOptions client_options;
    client_options.block_events = static_cast<std::size_t>(100 + 37 * c);
    if (c == 1) {  // the slow client: dribbles bytes with pauses
      client_options.chunk_bytes = 64;
      client_options.pace_seconds = 0.0002;
    }
    clients.emplace_back([port, share = std::move(share), client_options] {
      stream_events(connect_tcp("127.0.0.1", port), share, client_options);
    });
  }

  const EngineMetrics metrics = engine->serve(*&source, ServeOptions{});
  for (std::thread& t : clients) t.join();

  expect_same(metrics, reference);
  EXPECT_EQ(server.connections_total(), 3u);
  EXPECT_EQ(server.connections_failed(), 0u);
}

TEST_F(NetTest, MidFrameDisconnectKeepsExactlyTheValidatedPrefix) {
  // Client A streams its share completely; client B drops the connection
  // mid-frame. The serve must finish cleanly with aggregates equal to a
  // file replay of A's events plus B's fully-framed prefix.
  const std::vector<LogEvent> all = make_events(4000, 29);
  std::vector<LogEvent> share_a, share_b;
  for (std::size_t i = 0; i < all.size(); ++i) {
    ((all[i].object % 2 == 0) ? share_a : share_b).push_back(all[i]);
  }

  // Choose an abort budget that lands strictly inside a frame, and
  // compute the surviving prefix by replaying the client's own framing.
  const std::size_t kBlock = 64;
  std::uint64_t abort_bytes = 0;
  std::size_t surviving = 0;
  {
    std::uint64_t bytes = 0;
    std::vector<std::uint64_t> frame_ends;
    for (std::size_t i = 0; i < share_b.size(); i += kBlock) {
      const std::size_t n = std::min(kBlock, share_b.size() - i);
      const auto at = static_cast<std::ptrdiff_t>(i);
      const std::vector<LogEvent> block(
          share_b.begin() + at,
          share_b.begin() + at + static_cast<std::ptrdiff_t>(n));
      bytes += encode_frame(block).size();
      frame_ends.push_back(bytes);
    }
    ASSERT_GE(frame_ends.size(), 4u);
    abort_bytes = frame_ends[2] + 7;  // 7 bytes into the fourth frame
    surviving = 3 * kBlock;
  }

  std::vector<LogEvent> expected = share_a;
  expected.insert(expected.end(), share_b.begin(),
                  share_b.begin() + static_cast<std::ptrdiff_t>(surviving));
  std::sort(expected.begin(), expected.end(),
            [](const LogEvent& x, const LogEvent& y) {
              return x.time < y.time;
            });
  const EngineMetrics reference = reference_metrics(expected);

  NetServerOptions options;
  options.tcp_port = -1;
  options.unix_path = temp_path("ingest.sock");
  options.min_connections = 2;
  NetIngestServer server(options);
  auto engine = make_engine();
  NetIngestSource source(server, kServers);
  source.attach(*engine);

  std::thread a([&] {
    stream_events(connect_unix(options.unix_path), share_a, {});
  });
  std::thread b([&] {
    EventStreamClientOptions dropper;
    dropper.block_events = kBlock;
    dropper.abort_after_bytes = abort_bytes;
    stream_events(connect_unix(options.unix_path), share_b, dropper);
  });

  const EngineMetrics metrics = engine->serve(source, ServeOptions{});
  a.join();
  b.join();

  expect_same(metrics, reference);
  EXPECT_EQ(server.connections_failed(), 1u);
  EXPECT_NE(server.metrics_json().find("disconnected mid-frame"),
            std::string::npos);
}

TEST_F(NetTest, CorruptFrameKillsTheConnectionNotTheServer) {
  const std::vector<LogEvent> all = make_events(2000, 17);
  std::vector<LogEvent> share_a, share_b;
  for (std::size_t i = 0; i < all.size(); ++i) {
    ((all[i].object % 2 == 0) ? share_a : share_b).push_back(all[i]);
  }
  const EngineMetrics reference = reference_metrics(share_a);

  NetServerOptions options;
  options.unix_path = temp_path("ingest.sock");
  options.tcp_port = -1;
  options.min_connections = 2;
  NetIngestServer server(options);
  auto engine = make_engine();
  NetIngestSource source(server, kServers);
  source.attach(*engine);

  std::thread a([&] {
    stream_events(connect_unix(options.unix_path), share_a, {});
  });
  std::thread b([&] {
    // Raw socket: valid handshake, then a payload with a flipped bit.
    try {
      Socket sock = connect_unix(options.unix_path);
      unsigned char header[EventLogHeader::kSize];
      encode_stream_header(header, kServers);
      sock.write_all(header, sizeof(header));
      unsigned char ack[kNetAckBytes];
      ASSERT_TRUE(sock.read_exact(ack, sizeof(ack)));
      std::vector<unsigned char> frame = encode_frame(share_b);
      frame[kBlockFrameBytes + 11] ^= 0x08;
      sock.write_all(frame.data(), frame.size());
      sock.shutdown_write();
      // Wait for the server to close on us (kill observed).
      unsigned char sink;
      sock.read_exact(&sink, 1);
    } catch (const std::exception&) {
    }
  });

  const EngineMetrics metrics = engine->serve(source, ServeOptions{});
  a.join();
  b.join();

  // Only the clean client's events were served; the corrupt one is a
  // diagnosed failure, not a crash.
  expect_same(metrics, reference);
  EXPECT_EQ(server.connections_failed(), 1u);
  EXPECT_NE(server.metrics_json().find("CRC mismatch"), std::string::npos);
}

TEST_F(NetTest, LateJoinerBehindTheWatermarkIsKilled) {
  const std::vector<LogEvent> early = make_events(500, 7);

  NetServerOptions options;
  options.unix_path = temp_path("ingest.sock");
  options.tcp_port = -1;
  options.min_connections = 2;
  NetIngestServer server(options);
  auto engine = make_engine();
  NetIngestSource source(server, kServers);
  source.attach(*engine);

  std::thread clients([&] {
    // First client streams and closes; its events are fully admitted
    // once it is the only open connection.
    stream_events(connect_unix(options.unix_path), early, {});
    // Poll until the serve has admitted everything the first client sent.
    while (server.events_admitted() < early.size()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    // The second client replays old times — behind the watermark.
    stream_events(connect_unix(options.unix_path), early, {});
  });

  const EngineMetrics metrics = engine->serve(source, ServeOptions{});
  clients.join();

  EXPECT_EQ(metrics.events, early.size());
  EXPECT_EQ(server.connections_failed(), 1u);
  EXPECT_NE(server.metrics_json().find("time-regressed"), std::string::npos);
}

TEST_F(NetTest, TinyQueuesBackpressureWithoutLossOrDeadlock) {
  const std::vector<LogEvent> all = make_events(5000, 13);
  const EngineMetrics reference = reference_metrics(all);

  NetServerOptions options;
  options.unix_path = temp_path("ingest.sock");
  options.tcp_port = -1;
  options.max_connection_events = 8;  // absurdly small on purpose
  options.max_total_events = 8;
  options.batch_events = 4;
  NetIngestServer server(options);
  auto engine = make_engine();
  NetIngestSource source(server, kServers);
  source.attach(*engine);

  std::thread client([&] {
    EventStreamClientOptions small;
    small.block_events = 32;
    stream_events(connect_unix(options.unix_path), all, small);
  });

  const EngineMetrics metrics = engine->serve(source, ServeOptions{});
  client.join();
  expect_same(metrics, reference);
  EXPECT_EQ(server.connections_failed(), 0u);
}

TEST_F(NetTest, ZeroEventClientEndsTheServeCleanly) {
  NetServerOptions options;
  options.unix_path = temp_path("ingest.sock");
  options.tcp_port = -1;
  NetIngestServer server(options);
  auto engine = make_engine();
  NetIngestSource source(server, kServers);
  source.attach(*engine);

  std::thread client([&] {
    stream_events(connect_unix(options.unix_path), {}, {});
  });
  const EngineMetrics metrics = engine->serve(source, ServeOptions{});
  client.join();
  EXPECT_EQ(metrics.events, 0u);
  EXPECT_EQ(server.connections_failed(), 0u);
}

TEST_F(NetTest, HandshakeRejectsMismatchedServerCount) {
  NetServerOptions options;
  options.unix_path = temp_path("ingest.sock");
  options.tcp_port = -1;
  NetIngestServer server(options);
  server.start(kServers, 0);

  EventStreamClient client(connect_unix(options.unix_path));
  EXPECT_THROW(client.handshake(kServers + 1), std::runtime_error);
  server.stop();
  EXPECT_EQ(server.connections_failed(), 1u);
}

TEST_F(NetTest, KillAndResumeFromCheckpointReproducesUninterruptedRun) {
  // The crash drill: serve part of the stream with periodic checkpoints,
  // "crash" (abandon engine and server), restore from the snapshot, let
  // the client reconnect — the handshake tells it how much to skip — and
  // finish. Final aggregates must equal an uninterrupted run.
  const std::vector<LogEvent> all = make_events(4000, 23);
  const EngineMetrics reference = reference_metrics(all);
  const std::string ckpt = temp_path("live.ckpt");

  std::uint64_t resume_offset = 0;
  {
    NetServerOptions options;
    options.unix_path = temp_path("ingest.sock");
    options.tcp_port = -1;
    options.batch_events = 256;  // keep the kill point mid-stream
    NetIngestServer server(options);
    auto engine = make_engine();
    NetIngestSource source(server, kServers);
    source.attach(*engine);

    std::thread client([&] {
      EventStreamClientOptions small;
      small.block_events = 64;
      stream_events(connect_unix(options.unix_path), all, small);
    });

    // Manual drain (the serve loop minus finish): ingest until we are
    // past 1500 events, checkpoint, and abandon everything mid-session.
    std::vector<LogEvent> batch;
    while (engine->stats().events_ingested < 1500 &&
           source.next_batch(batch)) {
      engine->ingest(batch);
    }
    engine->checkpoint(ckpt);
    resume_offset = engine->stats().events_ingested;
    ASSERT_GT(resume_offset, 0u);
    ASSERT_LT(resume_offset, all.size());
    server.stop();
    client.join();
  }

  // Restart: restore the snapshot, serve the remainder of the stream.
  auto engine = StreamingEngine::restore(ckpt, net_config(), EngineOptions{},
                                         drwp_factory(), last_gap_factory());
  ASSERT_EQ(engine->resume_position(), resume_offset);

  NetServerOptions options;
  options.unix_path = temp_path("ingest2.sock");
  options.tcp_port = -1;
  NetIngestServer server(options);
  NetIngestSource source(server, kServers);
  source.attach(*engine);

  std::thread client([&] {
    try {
      EventStreamClient client_conn(connect_unix(options.unix_path));
      const std::uint64_t skip = client_conn.handshake(kServers);
      EXPECT_EQ(skip, resume_offset);
      for (std::size_t i = static_cast<std::size_t>(skip); i < all.size();
           ++i) {
        client_conn.send(all[i]);
      }
      client_conn.finish();
    } catch (const std::exception&) {
    }
  });

  const EngineMetrics metrics = engine->serve(source, ServeOptions{});
  client.join();
  expect_same(metrics, reference);
}

/// One HTTP GET against a local port; optional extra request headers
/// ("Accept: application/json\r\n"). Returns the full raw response.
std::string http_get(int port, const std::string& target,
                     const std::string& extra_headers = "") {
  Socket sock = connect_tcp("127.0.0.1", port);
  const std::string request =
      "GET " + target + " HTTP/1.0\r\n" + extra_headers + "\r\n";
  sock.write_all(reinterpret_cast<const unsigned char*>(request.data()),
                 request.size());
  std::string response;
  unsigned char buf[512];
  for (;;) {
    const std::size_t n = sock.read_some(buf, sizeof(buf));
    if (n == 0) break;
    response.append(reinterpret_cast<const char*>(buf), n);
  }
  return response;
}

TEST_F(NetTest, MetricsEndpointServesPrometheusAndJsonOverHttp) {
  NetServerOptions options;
  options.unix_path = temp_path("ingest.sock");
  options.tcp_port = -1;
  options.metrics_port = 0;
  NetIngestServer server(options);
  server.start(kServers, 42);
  server.note_checkpoint(1000);
  const int port = server.metrics_port();
  ASSERT_GT(port, 0);

  // Default /metrics is Prometheus text. The admitted counter speaks
  // logical-stream positions, so it starts at the resume offset; the
  // checkpoint gauges reflect note_checkpoint.
  const std::string prom = http_get(port, "/metrics");
  EXPECT_NE(prom.find("200 OK"), std::string::npos);
  EXPECT_NE(prom.find("text/plain; version=0.0.4"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE repl_net_events_admitted_total counter"),
            std::string::npos);
  EXPECT_NE(prom.find("repl_net_events_admitted_total 42"),
            std::string::npos);
  EXPECT_NE(prom.find("repl_checkpoint_events 1000"), std::string::npos);

  // Query strings and HTTP/1.0 clients must not confuse the routing.
  EXPECT_NE(http_get(port, "/metrics?x=1&y=2")
                .find("repl_net_events_admitted_total 42"),
            std::string::npos);

  // JSON via content negotiation and via the explicit .json path, with
  // the per-connection detail the old endpoint carried.
  for (const std::string& json :
       {http_get(port, "/metrics", "Accept: application/json\r\n"),
        http_get(port, "/metrics.json")}) {
    EXPECT_NE(json.find("200 OK"), std::string::npos);
    EXPECT_NE(json.find("application/json"), std::string::npos);
    EXPECT_NE(json.find("\"repl_net_events_admitted_total\""),
              std::string::npos);
    EXPECT_NE(json.find("\"per_connection\""), std::string::npos);
    EXPECT_NE(json.find("\"uptime_seconds\""), std::string::npos);
  }

  const std::string health = http_get(port, "/healthz");
  EXPECT_NE(health.find("200 OK"), std::string::npos);
  EXPECT_NE(health.find("\"status\":\"ok\""), std::string::npos);

  EXPECT_NE(http_get(port, "/bogus").find("404"), std::string::npos);
  server.stop();
}

TEST_F(NetTest, RegistryAgreesWithServerCountersEndToEnd) {
  // A shared registry (as repl_server wires it): the server publishes
  // into a caller-owned registry, and after a full serve both exposition
  // formats scraped over HTTP agree exactly with the server's own
  // counters.
  const std::vector<LogEvent> all = make_events(3000, 29);
  const EngineMetrics reference = reference_metrics(all);

  obs::MetricsRegistry registry;
  NetServerOptions options;
  options.tcp_port = 0;
  options.metrics_port = 0;
  options.batch_events = 128;
  options.metrics = &registry;
  EngineMetrics metrics;
  {
    NetIngestServer server(options);
    auto engine = make_engine();
    NetIngestSource source(server, kServers);
    source.attach(*engine);
    ASSERT_GT(server.tcp_port(), 0);

    std::thread client([&] {
      stream_events(connect_tcp("127.0.0.1", server.tcp_port()), all, {});
    });
    metrics = engine->serve(source, ServeOptions{});
    client.join();

    expect_same(metrics, reference);
    EXPECT_EQ(server.events_admitted(), all.size());

    // The registry's counters must equal the server's own accounting.
    obs::Counter& admitted = registry.counter(
        "repl_net_events_admitted_total", "");
    obs::Counter& received = registry.counter(
        "repl_net_events_received_total", "");
    EXPECT_EQ(admitted.value(), server.events_admitted());
    EXPECT_EQ(received.value(), all.size());

    // End-to-end over HTTP: both formats carry that exact value.
    const std::string want =
        "repl_net_events_admitted_total " + std::to_string(all.size());
    EXPECT_NE(http_get(server.metrics_port(), "/metrics").find(want),
              std::string::npos);
    EXPECT_NE(http_get(server.metrics_port(), "/metrics.json")
                  .find("\"repl_net_events_admitted_total\":{\"type\":"
                        "\"counter\",\"value\":" +
                        std::to_string(all.size())),
              std::string::npos);
    server.stop();
  }
  // The server removed its collect hook on destruction: scraping the
  // surviving registry is safe and the counters persist.
  bool saw_admitted = false;
  for (const obs::Sample& s : registry.collect()) {
    if (s.name == "repl_net_events_admitted_total") {
      saw_admitted = true;
      EXPECT_EQ(s.counter_value, all.size());
    }
  }
  EXPECT_TRUE(saw_admitted);
}

// ---------------------------------------------------------------------
// Reconnect-with-backoff client

TEST_F(NetTest, ReconnectBackoffExhaustsAttemptsAndPropagates) {
  // No server ever listens: every dial fails, the backoff schedule runs
  // between attempts, and the last error propagates out of connect().
  std::vector<double> delays;
  ReconnectPolicy policy;
  policy.max_attempts = 3;
  policy.initial_backoff_seconds = 0.001;
  policy.max_backoff_seconds = 0.004;
  policy.on_retry = [&](std::size_t attempt, double delay) {
    EXPECT_EQ(attempt, delays.size());
    EXPECT_GT(delay, 0.0);
    delays.push_back(delay);
  };
  const std::string path = temp_path("never.sock");
  ReconnectingEventStreamClient client([&] { return connect_unix(path); },
                                       kServers, policy);
  EXPECT_THROW(client.connect(), std::exception);
  EXPECT_EQ(client.attempts(), 3u);
  EXPECT_EQ(client.connects(), 0u);
  EXPECT_FALSE(client.connected());
  // on_retry fires between attempts, not after the final failure.
  EXPECT_EQ(delays.size(), 2u);
}

TEST_F(NetTest, ReconnectingClientSurvivesLateServerAndMidStreamDrop) {
  // The coordinator's client loop in miniature: the client starts
  // dialing before the server exists (backoff carries it), streams half
  // the events, loses its transport at a frame boundary, reconnects,
  // and finishes. The merged serve equals a direct ingest.
  const std::vector<LogEvent> all = make_events(4000, 31);
  const EngineMetrics reference = reference_metrics(all);

  NetServerOptions options;
  options.unix_path = temp_path("ingest.sock");
  options.tcp_port = -1;
  options.batch_events = 128;
  options.min_connections = 2;  // the serve must outlive the drop

  std::size_t attempts = 0;
  std::size_t connects = 0;
  std::thread client([&] {
    ReconnectPolicy policy;
    policy.max_attempts = 500;
    policy.initial_backoff_seconds = 0.002;
    policy.max_backoff_seconds = 0.02;
    ReconnectingEventStreamClient rc(
        [&] { return connect_unix(options.unix_path); }, kServers, policy);
    EXPECT_EQ(rc.connect(), 0u);
    for (std::size_t i = 0; i < all.size() / 2; ++i) rc.send(all[i]);
    rc.flush();
    rc.drop();  // simulated transport loss at a frame boundary
    EXPECT_FALSE(rc.connected());
    EXPECT_EQ(rc.reconnect(), 0u);
    for (std::size_t i = all.size() / 2; i < all.size(); ++i) rc.send(all[i]);
    rc.finish();
    attempts = rc.attempts();
    connects = rc.connects();
  });

  // Bring the server up only after the client has begun dialing.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  NetIngestServer server(options);
  auto engine = make_engine();
  NetIngestSource source(server, kServers);
  source.attach(*engine);
  const EngineMetrics metrics = engine->serve(source, ServeOptions{});
  client.join();

  expect_same(metrics, reference);
  EXPECT_EQ(connects, 2u);
  EXPECT_GE(attempts, connects);
  EXPECT_EQ(server.connections_total(), 2u);
}

// ---------------------------------------------------------------------
// Per-connection ingest rate limiting

TEST_F(NetTest, RateLimitBoundsIngestWithoutLossAndCountsStalls) {
  // 6000 events against a 4000/s cap with one second of burst: the
  // bucket admits 4000 immediately and meters the remaining 2000, so
  // the serve cannot finish faster than ~0.5s — and no event is lost
  // or reordered by the throttle.
  const std::vector<LogEvent> all = make_events(6000, 17);
  const EngineMetrics reference = reference_metrics(all);

  obs::MetricsRegistry registry;
  NetServerOptions options;
  options.unix_path = temp_path("ingest.sock");
  options.tcp_port = -1;
  options.batch_events = 256;
  options.max_events_per_sec = 4000.0;
  options.metrics = &registry;
  NetIngestServer server(options);
  auto engine = make_engine();
  NetIngestSource source(server, kServers);
  source.attach(*engine);

  const auto start = std::chrono::steady_clock::now();
  std::thread client([&] {
    EventStreamClientOptions small;
    small.block_events = 512;
    stream_events(connect_unix(options.unix_path), all, small);
  });
  const EngineMetrics metrics = engine->serve(source, ServeOptions{});
  client.join();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  expect_same(metrics, reference);
  EXPECT_EQ(server.connections_failed(), 0u);
  EXPECT_GE(elapsed, 0.4);
  EXPECT_GE(registry.counter("repl_net_backpressure_stalls_total", "").value(),
            1u);
}

}  // namespace
}  // namespace repl
